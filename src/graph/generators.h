// Graph generators for experiments and tests.
//
// Includes the paper's lower-bound hard instance (complete bipartite
// K_{Delta,Delta} plus isolated vertices, Lemma 14 / Theorem 22) and the
// standard families used to exercise the simulation at varying n and Delta.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "graph/graph.h"

namespace nb {

/// Complete graph K_n.
Graph make_complete(std::size_t n);

/// Complete bipartite graph K_{left,right}; nodes 0..left-1 form the left
/// part, left..left+right-1 the right part.
Graph make_complete_bipartite(std::size_t left, std::size_t right);

/// The paper's hard instance (Lemma 14): K_{delta,delta} plus enough isolated
/// vertices to reach `n` nodes total. Precondition: n >= 2*delta.
Graph make_hard_instance(std::size_t n, std::size_t delta);

/// Cycle on n >= 3 nodes.
Graph make_ring(std::size_t n);

/// Path on n nodes.
Graph make_path(std::size_t n);

/// Star: node 0 connected to nodes 1..n-1.
Graph make_star(std::size_t n);

/// rows x cols 2D grid (4-neighborhood).
Graph make_grid(std::size_t rows, std::size_t cols);

/// Complete `arity`-ary tree with `n` nodes (node 0 is the root; node v's
/// parent is (v-1)/arity).
Graph make_tree(std::size_t n, std::size_t arity);

/// Erdos-Renyi G(n, p): each pair is an edge independently with probability p.
Graph make_erdos_renyi(std::size_t n, double p, Rng& rng);

/// Random d-regular-ish graph via the pairing model; pairs producing
/// self-loops or duplicates are dropped, so degrees may be slightly below d.
/// Precondition: n * d even, d < n.
Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edge iff
/// Euclidean distance <= radius. The classic sensor-network topology that
/// motivates beeping models.
Graph make_random_geometric(std::size_t n, double radius, Rng& rng);

}  // namespace nb
