#include "graph/partition.h"

#include <algorithm>

#include "common/error.h"

namespace nb {

namespace {

/// Sorted position of global id `v` in `ids`. Precondition: v is present.
std::uint32_t local_index(const std::vector<std::uint32_t>& ids, NodeId v) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), v);
    return static_cast<std::uint32_t>(it - ids.begin());
}

}  // namespace

std::uint32_t ShardPlan::owner(NodeId v) const {
    require(v < node_count, "ShardPlan::owner: node out of range");
    const auto it = std::upper_bound(owner_start.begin(), owner_start.end(), v);
    return static_cast<std::uint32_t>(it - owner_start.begin()) - 1;
}

ShardPlan make_shard_plan(const Graph& graph, std::size_t shard_count) {
    const std::size_t n = graph.node_count();
    const std::size_t k = std::max<std::size_t>(1, std::min(shard_count, std::max<std::size_t>(1, n)));

    ShardPlan plan;
    plan.node_count = n;
    plan.shards.resize(k);
    plan.owner_start.resize(k + 1);
    for (std::size_t s = 0; s <= k; ++s) {
        plan.owner_start[s] = static_cast<NodeId>(s * n / k);
    }

    // Per-shard closures and induced subgraphs. `mark` distinguishes the
    // membership rings of the shard under construction (reset via `touched`
    // between shards, so the pass is O(sum of closure sizes), not O(n*k)).
    enum class Ring : unsigned char { none, owned, halo1, halo2 };
    std::vector<Ring> mark(n, Ring::none);
    std::vector<NodeId> touched;
    for (std::size_t s = 0; s < k; ++s) {
        ShardPlan::Shard& shard = plan.shards[s];
        const NodeId lo = plan.owner_start[s];
        const NodeId hi = plan.owner_start[s + 1];
        shard.owned_first = lo;
        shard.owned_count = hi - lo;

        touched.clear();
        for (NodeId v = lo; v < hi; ++v) {
            mark[v] = Ring::owned;
            touched.push_back(v);
        }
        for (NodeId v = lo; v < hi; ++v) {
            for (const auto u : graph.neighbors(v)) {
                if (mark[u] == Ring::none) {
                    mark[u] = Ring::halo1;
                    touched.push_back(u);
                }
            }
        }
        // Two-hop halo: neighbors of the one-hop halo. (Neighbors of owned
        // nodes are already owned or halo1.)
        const std::size_t ring1_end = touched.size();
        for (std::size_t i = shard.owned_count; i < ring1_end; ++i) {
            for (const auto u : graph.neighbors(touched[i])) {
                if (mark[u] == Ring::none) {
                    mark[u] = Ring::halo2;
                    touched.push_back(u);
                }
            }
        }

        shard.local_to_global.assign(touched.begin(), touched.end());
        std::sort(shard.local_to_global.begin(), shard.local_to_global.end());
        shard.owned_begin = local_index(shard.local_to_global, lo);

        // Induced edges with at least one endpoint in owned + halo1: those
        // endpoints' full neighborhoods lie inside the closure, so their
        // local adjacency is exact. An owned/halo1 pair is seen from both
        // sides (keep u < w once); a halo2 endpoint only from its inner side.
        std::vector<Edge> edges;
        for (const auto u : shard.local_to_global) {
            if (mark[u] != Ring::owned && mark[u] != Ring::halo1) {
                continue;
            }
            const std::uint32_t lu = local_index(shard.local_to_global, u);
            for (const auto w : graph.neighbors(u)) {
                const bool w_inner = mark[w] == Ring::owned || mark[w] == Ring::halo1;
                if (w_inner && w < u) {
                    continue;  // counted from w's side
                }
                edges.push_back(Edge{lu, local_index(shard.local_to_global, w)});
            }
        }
        shard.local = Graph::from_edges(shard.local_to_global.size(), edges);

        for (const auto v : touched) {
            mark[v] = Ring::none;
        }
    }

    // Boundary exchange: a node is exported iff it sits in another shard's
    // halo. Export rows are ordered by global id, so every shard derives the
    // same row numbering independently.
    std::vector<std::vector<std::uint32_t>> exported(k);  // global ids, per owner
    for (std::size_t s = 0; s < k; ++s) {
        const ShardPlan::Shard& shard = plan.shards[s];
        for (const auto g : shard.local_to_global) {
            if (g < shard.owned_first ||
                g >= shard.owned_first + shard.owned_count) {
                exported[plan.owner(g)].push_back(g);
            }
        }
    }
    for (std::size_t s = 0; s < k; ++s) {
        auto& ids = exported[s];
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        ShardPlan::Shard& shard = plan.shards[s];
        shard.exports.reserve(ids.size());
        for (const auto g : ids) {
            shard.exports.push_back(local_index(shard.local_to_global, g));
        }
    }
    for (std::size_t s = 0; s < k; ++s) {
        ShardPlan::Shard& shard = plan.shards[s];
        for (std::uint32_t local = 0;
             local < static_cast<std::uint32_t>(shard.local_to_global.size()); ++local) {
            const NodeId g = shard.local_to_global[local];
            if (g >= shard.owned_first && g < shard.owned_first + shard.owned_count) {
                continue;
            }
            const std::uint32_t owner = plan.owner(g);
            shard.imports.push_back(ShardPlan::Import{
                local, owner, local_index(exported[owner], g)});
        }
    }
    return plan;
}

}  // namespace nb
