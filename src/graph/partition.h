// Contiguous-range graph partitioning for the sharded transport.
//
// A ShardPlan splits the node ids [0, n) into k contiguous owned ranges and
// derives, per shard, everything the sharded transport needs to decode its
// owned nodes without touching any other shard's subgraph:
//
//   * the *closure* — owned nodes plus their one- and two-hop halos — as a
//     sorted local-to-global id map (owned ids form one contiguous local
//     run, so "is local index v owned" is a range test);
//   * the induced local Graph over the closure, restricted to edges with at
//     least one endpoint in owned + one-hop halo. That restriction keeps
//     every owned and one-hop node's local adjacency *exactly* equal to its
//     global adjacency (their neighborhoods are inside the closure by
//     construction), which makes the local two-hop candidate set of every
//     owned node identical to the global one — the exactness argument the
//     sharded transport's bit-identity rests on (DESIGN.md section 10);
//   * the boundary exchange lists: `exports` (owned locals some other
//     shard's closure needs, in sorted global order — the shard's rows of
//     the boundary table) and `imports` (every halo local, with the owning
//     shard and that owner's export row to read).
//
// The plan is a pure function of (graph, shard_count): no RNG, no
// dependence on worker counts, so any two runs agree on every row index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nb {

struct ShardPlan {
    /// A halo local's row in the one-writer boundary table.
    struct Import {
        std::uint32_t local = 0;      ///< local index in this shard's closure
        std::uint32_t src_shard = 0;  ///< shard owning the node
        std::uint32_t src_row = 0;    ///< row in that shard's export block
    };

    struct Shard {
        NodeId owned_first = 0;            ///< first owned global id
        std::uint32_t owned_count = 0;     ///< owned ids are [owned_first, +count)
        std::uint32_t owned_begin = 0;     ///< local index of owned_first
        std::vector<std::uint32_t> local_to_global;  ///< sorted closure
        Graph local;                       ///< induced subgraph over the closure
        std::vector<std::uint32_t> exports;  ///< owned locals, sorted, one table row each
        std::vector<Import> imports;         ///< all halo locals, sorted by local index
    };

    std::size_t node_count = 0;
    std::vector<Shard> shards;
    /// owner_start[s] = first global id shard s owns (size shards.size()+1,
    /// last element = node_count); owner lookup is an upper_bound.
    std::vector<NodeId> owner_start;

    std::size_t shard_count() const noexcept { return shards.size(); }

    /// The shard owning global id v. Precondition: v < node_count.
    std::uint32_t owner(NodeId v) const;
};

/// Partition `graph` into min(shard_count, max(1, n)) contiguous shards of
/// near-equal size (shard s owns [floor(s*n/k), floor((s+1)*n/k))).
ShardPlan make_shard_plan(const Graph& graph, std::size_t shard_count);

}  // namespace nb
