// Centralized graph utilities: traversal, components, coloring.
//
// The distance-2 (G^2) coloring is the substrate of the prior-work baseline
// simulations ([7], [4]): nodes of the same color are pairwise at distance
// > 2, so when one color class transmits, every listener has at most one
// beeping neighbor.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace nb {

/// Distance marker for unreachable nodes in bfs_distances.
inline constexpr std::size_t unreachable = std::numeric_limits<std::size_t>::max();

/// BFS hop distances from `source` (unreachable for disconnected nodes).
std::vector<std::size_t> bfs_distances(const Graph& graph, NodeId source);

/// Eccentricity of `source`: max distance to any reachable node.
std::size_t eccentricity(const Graph& graph, NodeId source);

/// Diameter of the graph restricted to reachable pairs (exact; O(n*m)).
std::size_t diameter(const Graph& graph);

/// Number of connected components.
std::size_t connected_component_count(const Graph& graph);

/// True iff all nodes are in one component (n <= 1 counts as connected).
bool is_connected(const Graph& graph);

/// Greedy proper coloring of G (distance-1): adjacent nodes get different
/// colors. Returns per-node colors in [0, max_degree].
std::vector<std::size_t> greedy_coloring(const Graph& graph);

/// Greedy coloring of G^2 (distance-2): nodes within two hops get different
/// colors. Returns per-node colors; at most Delta^2 + 1 colors are used.
std::vector<std::size_t> greedy_distance2_coloring(const Graph& graph);

/// Verify a proper coloring of G; returns true iff no edge is monochromatic.
bool is_proper_coloring(const Graph& graph, const std::vector<std::size_t>& colors);

/// Verify a distance-2 coloring: no two distinct nodes within 2 hops share a
/// color.
bool is_distance2_coloring(const Graph& graph, const std::vector<std::size_t>& colors);

/// Number of distinct colors used.
std::size_t color_count(const std::vector<std::size_t>& colors);

}  // namespace nb
