// Static undirected graph in compressed sparse row form.
//
// Networks in all models (beeping, Broadcast CONGEST, CONGEST) share this
// representation: nodes are 0..n-1, edges are undirected, no self-loops or
// parallel edges. Graphs are immutable once built.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace nb {

using NodeId = std::uint32_t;

/// An undirected edge as an (ordered) pair of endpoints; canonical form has
/// first < second.
struct Edge {
    NodeId first = 0;
    NodeId second = 0;

    /// Canonicalized copy (smaller endpoint first).
    Edge canonical() const noexcept {
        return first <= second ? *this : Edge{second, first};
    }

    friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
public:
    /// Empty graph with `node_count` isolated nodes.
    explicit Graph(std::size_t node_count = 0);

    /// Build from an edge list. Throws precondition_error on self-loops,
    /// out-of-range endpoints, or duplicate edges.
    static Graph from_edges(std::size_t node_count, const std::vector<Edge>& edges);

    std::size_t node_count() const noexcept { return offsets_.size() - 1; }
    std::size_t edge_count() const noexcept { return neighbors_.size() / 2; }

    /// Degree of node v.
    std::size_t degree(NodeId v) const;

    /// Maximum degree Delta over all nodes (0 for an empty graph).
    std::size_t max_degree() const noexcept { return max_degree_; }

    /// Neighbors of v, sorted ascending.
    std::span<const NodeId> neighbors(NodeId v) const;

    /// True iff {u, v} is an edge (binary search; O(log degree)).
    bool has_edge(NodeId u, NodeId v) const;

    /// All edges in canonical form, sorted.
    std::vector<Edge> edges() const;

    /// Nodes with degree at least 1.
    std::size_t non_isolated_count() const noexcept;

private:
    std::vector<std::size_t> offsets_;  // size n+1
    std::vector<NodeId> neighbors_;     // size 2m, sorted within each node
    std::size_t max_degree_ = 0;
};

}  // namespace nb
