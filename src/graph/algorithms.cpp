#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/error.h"

namespace nb {

std::vector<std::size_t> bfs_distances(const Graph& graph, NodeId source) {
    require(source < graph.node_count(), "bfs_distances: source out of range");
    std::vector<std::size_t> distance(graph.node_count(), unreachable);
    distance[source] = 0;
    std::deque<NodeId> frontier{source};
    while (!frontier.empty()) {
        const NodeId v = frontier.front();
        frontier.pop_front();
        for (const auto u : graph.neighbors(v)) {
            if (distance[u] == unreachable) {
                distance[u] = distance[v] + 1;
                frontier.push_back(u);
            }
        }
    }
    return distance;
}

std::size_t eccentricity(const Graph& graph, NodeId source) {
    std::size_t max_distance = 0;
    for (const auto d : bfs_distances(graph, source)) {
        if (d != unreachable) {
            max_distance = std::max(max_distance, d);
        }
    }
    return max_distance;
}

std::size_t diameter(const Graph& graph) {
    std::size_t result = 0;
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        result = std::max(result, eccentricity(graph, v));
    }
    return result;
}

std::size_t connected_component_count(const Graph& graph) {
    std::vector<bool> visited(graph.node_count(), false);
    std::size_t components = 0;
    for (NodeId start = 0; start < graph.node_count(); ++start) {
        if (visited[start]) {
            continue;
        }
        ++components;
        std::deque<NodeId> frontier{start};
        visited[start] = true;
        while (!frontier.empty()) {
            const NodeId v = frontier.front();
            frontier.pop_front();
            for (const auto u : graph.neighbors(v)) {
                if (!visited[u]) {
                    visited[u] = true;
                    frontier.push_back(u);
                }
            }
        }
    }
    return components;
}

bool is_connected(const Graph& graph) {
    return graph.node_count() <= 1 || connected_component_count(graph) == 1;
}

namespace {

/// Greedy coloring over an abstract "conflicting nodes" enumeration.
template <typename ConflictFn>
std::vector<std::size_t> greedy_color_with_conflicts(std::size_t node_count,
                                                     ConflictFn&& conflicts_of) {
    std::vector<std::size_t> colors(node_count, unreachable);
    std::vector<bool> used;
    for (NodeId v = 0; v < node_count; ++v) {
        used.assign(used.size(), false);
        std::size_t max_conflict_color = 0;
        conflicts_of(v, [&](NodeId u) {
            if (colors[u] != unreachable) {
                if (colors[u] >= used.size()) {
                    used.resize(colors[u] + 1, false);
                }
                used[colors[u]] = true;
                max_conflict_color = std::max(max_conflict_color, colors[u] + 1);
            }
        });
        std::size_t color = 0;
        while (color < used.size() && used[color]) {
            ++color;
        }
        colors[v] = color;
    }
    return colors;
}

}  // namespace

std::vector<std::size_t> greedy_coloring(const Graph& graph) {
    return greedy_color_with_conflicts(graph.node_count(), [&graph](NodeId v, auto&& visit) {
        for (const auto u : graph.neighbors(v)) {
            visit(u);
        }
    });
}

std::vector<std::size_t> greedy_distance2_coloring(const Graph& graph) {
    return greedy_color_with_conflicts(graph.node_count(), [&graph](NodeId v, auto&& visit) {
        for (const auto u : graph.neighbors(v)) {
            visit(u);
            for (const auto w : graph.neighbors(u)) {
                if (w != v) {
                    visit(w);
                }
            }
        }
    });
}

bool is_proper_coloring(const Graph& graph, const std::vector<std::size_t>& colors) {
    require(colors.size() == graph.node_count(), "is_proper_coloring: size mismatch");
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        for (const auto u : graph.neighbors(v)) {
            if (colors[u] == colors[v]) {
                return false;
            }
        }
    }
    return true;
}

bool is_distance2_coloring(const Graph& graph, const std::vector<std::size_t>& colors) {
    require(colors.size() == graph.node_count(), "is_distance2_coloring: size mismatch");
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        std::unordered_set<std::size_t> seen;
        seen.insert(colors[v]);
        for (const auto u : graph.neighbors(v)) {
            // Direct neighbors conflict with v and with each other (they are
            // all pairwise within distance 2 through v).
            if (!seen.insert(colors[u]).second) {
                return false;
            }
        }
    }
    return true;
}

std::size_t color_count(const std::vector<std::size_t>& colors) {
    if (colors.empty()) {
        return 0;
    }
    return *std::max_element(colors.begin(), colors.end()) + 1;
}

}  // namespace nb
