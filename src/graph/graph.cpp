#include "graph/graph.h"

#include <algorithm>

#include "common/error.h"

namespace nb {

Graph::Graph(std::size_t node_count) : offsets_(node_count + 1, 0) {}

Graph Graph::from_edges(std::size_t node_count, const std::vector<Edge>& edges) {
    Graph graph(node_count);

    std::vector<Edge> canonical;
    canonical.reserve(edges.size());
    for (const auto& edge : edges) {
        require(edge.first < node_count && edge.second < node_count,
                "Graph::from_edges: endpoint out of range");
        require(edge.first != edge.second, "Graph::from_edges: self-loops not allowed");
        canonical.push_back(edge.canonical());
    }
    std::sort(canonical.begin(), canonical.end(), [](const Edge& a, const Edge& b) {
        return a.first != b.first ? a.first < b.first : a.second < b.second;
    });
    require(std::adjacent_find(canonical.begin(), canonical.end()) == canonical.end(),
            "Graph::from_edges: duplicate edges not allowed");

    std::vector<std::size_t> degrees(node_count, 0);
    for (const auto& edge : canonical) {
        ++degrees[edge.first];
        ++degrees[edge.second];
    }
    for (std::size_t v = 0; v < node_count; ++v) {
        graph.offsets_[v + 1] = graph.offsets_[v] + degrees[v];
        graph.max_degree_ = std::max(graph.max_degree_, degrees[v]);
    }
    graph.neighbors_.resize(2 * canonical.size());
    std::vector<std::size_t> cursor(graph.offsets_.begin(), graph.offsets_.end() - 1);
    for (const auto& edge : canonical) {
        graph.neighbors_[cursor[edge.first]++] = edge.second;
        graph.neighbors_[cursor[edge.second]++] = edge.first;
    }
    for (std::size_t v = 0; v < node_count; ++v) {
        std::sort(graph.neighbors_.begin() + static_cast<std::ptrdiff_t>(graph.offsets_[v]),
                  graph.neighbors_.begin() + static_cast<std::ptrdiff_t>(graph.offsets_[v + 1]));
    }
    return graph;
}

std::size_t Graph::degree(NodeId v) const {
    require(v < node_count(), "Graph::degree: node out of range");
    return offsets_[v + 1] - offsets_[v];
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
    require(v < node_count(), "Graph::neighbors: node out of range");
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

bool Graph::has_edge(NodeId u, NodeId v) const {
    require(u < node_count() && v < node_count(), "Graph::has_edge: node out of range");
    const auto adjacency = neighbors(u);
    return std::binary_search(adjacency.begin(), adjacency.end(), v);
}

std::vector<Edge> Graph::edges() const {
    std::vector<Edge> result;
    result.reserve(edge_count());
    for (NodeId v = 0; v < node_count(); ++v) {
        for (const auto u : neighbors(v)) {
            if (v < u) {
                result.push_back(Edge{v, u});
            }
        }
    }
    return result;
}

std::size_t Graph::non_isolated_count() const noexcept {
    std::size_t total = 0;
    for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
        if (offsets_[v + 1] > offsets_[v]) {
            ++total;
        }
    }
    return total;
}

}  // namespace nb
