// Once-per-transport cache of Algorithm 1's codes, candidate dictionaries,
// and per-round derived state (see DESIGN.md sections 2 and 12).
//
// The paper's codes C, D and CD are public and fixed: a transport's decoders
// use the same three code objects for every simulated round, and every
// decoding node scans the same candidate dictionary. Before this layer
// existed, simulate_round rebuilt all of it — codes, all n codewords, their
// 1-position lists, and every candidate's distance-code encoding — from
// scratch on every call (and the encodings once per decoding node per
// accepted sender). The Codebook splits that state by lifetime:
//
//   * per transport (built exactly once, in the constructor): the
//     BeepCode/DistanceCode/CombinedCode triple and the candidate entry
//     index for the configured DictionaryPolicy;
//   * per round (rebuilt only when the (messages, nonce) key changes): the
//     fresh inputs r_v, payloads, codewords C(r_v) with cached 1-positions,
//     fault-free phase schedules, decoy material, and the phase-2 candidate
//     dictionary with all distance-code encodings precomputed.
//
// Three construction paths share one representation (DESIGN.md section 12):
// a fresh build computes the candidate index from the graph; a *delta* build
// copies every candidate row whose two-hop neighborhood an edit cannot have
// touched from a base codebook (and shares the base's code triple when the
// beep-code geometry — a function of max degree, not n — is unchanged); an
// *mmap* build borrows the index from a validated nb-codebook/v1 file
// (sim/codebook_io.h) without copying it. All three are fingerprint-identical
// by construction, and the property tests pin that.
//
// Per-round state is delta-updated too: when a round is rebuilt under the
// same nonce (only the messages changed — the topology-churn and sweep-job
// shape), the codewords, 1-positions, decoy material, and every unchanged
// entry's encoding are copied from the previous round (or from the delta
// base's round), and the word-major SoA dictionary is patched column-wise
// instead of re-transposed. Copying is sound because every reused quantity
// is a pure function of (transport_seed, nonce, entry id) or of that entry's
// unchanged message — the copied value equals the regenerated one bit for
// bit.
//
// Rounds are handed out as shared_ptr<const Round>: simulate_round keeps its
// round alive for the duration of the call, so concurrent callers with
// different (messages, nonce) keys never invalidate each other (they only
// thrash the single-entry cache). Construction counters are exposed via
// stats() so tests can assert the once-per-transport contract.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "codes/combined_code.h"
#include "common/bitslice.h"
#include "common/bitstring.h"
#include "common/word_soa.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "sim/params.h"

namespace nb {

class CodebookFile;

class Codebook {
public:
    /// Builds the code triple and candidate entry index once. The graph must
    /// outlive the codebook.
    Codebook(const Graph& graph, const SimulationParams& params);

    /// A shard's window onto a larger simulation: the local graph is one
    /// shard's closure (graph/partition.h) and every per-node derived
    /// quantity that depends on identity — input streams r_v, the beep-code
    /// length (a function of the *global* max degree) — uses the global ids,
    /// so the shard's codewords are bit-identical to the slots an unsharded
    /// codebook would build for the same nodes. Rounds built through a view
    /// generate codewords and schedules for the owned local range only; the
    /// halo slots stay empty and are filled by the sharded transport from
    /// the boundary table. Requires the two_hop dictionary (the only policy
    /// whose candidate sets are local by construction).
    struct ShardView {
        std::vector<std::uint32_t> global_ids;  ///< sorted; local index -> global id
        std::uint32_t owned_begin = 0;          ///< first owned local index
        std::uint32_t owned_count = 0;
        std::uint64_t global_node_count = 0;
        std::uint64_t global_max_degree = 0;

        /// Order-sensitive content digest (cache keying).
        std::uint64_t digest() const;
    };

    /// Shard-view build: `graph` is the shard's local closure graph.
    Codebook(const Graph& graph, const SimulationParams& params, ShardView view);

    /// Delta build for topology churn: `graph` is an edited version of
    /// `base.graph()` (appended nodes, added/removed edges; removal is
    /// modeled as isolating a node). Candidate rows whose two-hop
    /// neighborhood the edit cannot have reached are copied from `base`, the
    /// code triple is shared when the max degree (and so the beep-code
    /// length) is unchanged, and the base's cached round seeds same-nonce
    /// round rebuilds. Falls back to a full rebuild — still through this
    /// constructor, counted in stats().delta_full_rebuilds — when the node
    /// count shrinks. Requires an unsharded base and codebook-identical
    /// params (everything CodebookCache keys on except the graph); the
    /// result is fingerprint-identical to a fresh build by construction.
    Codebook(const Graph& graph, const SimulationParams& params, const Codebook& base);

    /// Mmap-backed build: borrow the candidate index from a validated
    /// nb-codebook/v1 file instead of recomputing it. The file's identity
    /// header (graph digests, node count, code params) must match (graph,
    /// params) — mismatches throw precondition_error. The mapping is kept
    /// alive for this codebook's lifetime.
    Codebook(const Graph& graph, const SimulationParams& params,
             std::shared_ptr<const CodebookFile> file);

    /// Mmap-backed shard-view build (the file additionally pins the view
    /// digest).
    Codebook(const Graph& graph, const SimulationParams& params, ShardView view,
             std::shared_ptr<const CodebookFile> file);

    /// The view this codebook was built through, or nullptr when unsharded.
    const ShardView* shard_view() const noexcept {
        return view_.has_value() ? &*view_ : nullptr;
    }

    const BeepCode& beep_code() const noexcept { return combined_->beep(); }
    const DistanceCode& distance_code() const noexcept { return combined_->distance(); }
    const CombinedCode& combined_code() const noexcept { return *combined_; }

    /// Beep-code length b for this graph's maximum degree.
    std::size_t beep_length() const noexcept { return combined_->length(); }

    /// Everything one round derives from (messages, nonce). Candidate arrays
    /// are indexed by "entry": entries 0..n-1 are the nodes' payloads, entry
    /// n is the null payload, entries n+1.. are the decoys.
    struct Round {
        std::vector<std::uint64_t> inputs;    ///< r_v
        std::vector<Bitstring> payloads;      ///< presence-bit-packed payloads
        std::vector<Bitstring> codewords;     ///< C(r_v)
        std::vector<std::vector<std::size_t>> one_positions;  ///< of C(r_v)

        std::vector<std::uint64_t> decoy_inputs;
        std::vector<Bitstring> decoy_codewords;
        std::vector<std::vector<std::size_t>> decoy_one_positions;

        /// Phase-2 dictionary over the entry space (size n + 1 + decoys):
        /// candidate messages and their cached distance-code encodings.
        std::vector<Bitstring> candidate_messages;
        std::vector<Bitstring> candidate_encoded;

        /// candidate_messages[e] with the presence bit stripped — the
        /// algorithm-level message each entry delivers, precomputed so the
        /// per-delivery extraction is a copy instead of a bit shift.
        std::vector<Bitstring> candidate_tails;

        /// Transposed phase-1 candidate matrix for the bitsliced decoder:
        /// columns 0..n-1 are the node codewords, columns n.. the decoys
        /// (the null payload has no codeword). Built, with decode_gaps, only
        /// under the all_nodes dictionary policy — the O(n)-per-node scans
        /// they accelerate; two-hop dictionaries are small enough that the
        /// scalar kernels win (see DESIGN.md section 5).
        BitsliceMatrix codeword_slices;

        /// candidate_encoded transposed word-major (common/word_soa.h) for
        /// the vectorized phase-2 full-dictionary sweep
        /// (DistanceCode::nearest_entry_soa). Built with codeword_slices —
        /// same policy, same crossover; empty() otherwise.
        WordSoa candidate_encoded_soa;

        /// Per-entry unique-decoding radii for the phase-2 radius shortcut
        /// (DistanceCode::decode_gaps). Empty under two_hop.
        std::vector<std::uint32_t> decode_gaps;

        /// Fault-free phase-2 schedules CD(r_v, payload_v) and the fault-free
        /// energy totals (phase 1 beeps the codewords themselves).
        std::vector<Bitstring> combined_schedules;
        std::size_t phase1_beeps = 0;
        std::size_t phase2_beeps = 0;

        Rng rng;  ///< the round rng all per-round streams derive from

        std::uint64_t nonce = 0;
        std::vector<std::optional<Bitstring>> messages;  ///< the cache key
    };

    /// The cached round for (messages, nonce), rebuilt only when the key
    /// differs from the previously returned one. Thread-safe. The key needs
    /// no channel component: a Round is channel-independent by construction
    /// (codewords, schedules, and dictionaries are what nodes *transmit*;
    /// the ChannelModel perturbs transcripts at hear time, from streams
    /// derived off round.rng by the engines), and the channel itself is
    /// fixed per transport.
    std::shared_ptr<const Round> round(const std::vector<std::optional<Bitstring>>& messages,
                                       std::uint64_t nonce) const;

    /// Candidate entries node v's decoder scans, in dictionary order: the
    /// candidate node ids (sorted two-hop set or all nodes, per the policy),
    /// then the null payload, then the decoys. The node-id prefix has length
    /// node_candidate_count(v).
    std::span<const std::uint32_t> candidate_entries(NodeId v) const;
    std::size_t node_candidate_count(NodeId v) const;

    /// The candidate index as flat CSR — row r of candidate_row_count()
    /// spans candidate_entry_data()[candidate_offsets()[r] ..
    /// candidate_offsets()[r+1]] (one row per node under two_hop, one shared
    /// row otherwise). This is exactly the payload nb-codebook/v1 serializes
    /// and an mmap build borrows in place.
    std::span<const std::uint64_t> candidate_offsets() const noexcept { return offsets_; }
    std::span<const std::uint32_t> candidate_entry_data() const noexcept { return entries_; }
    std::size_t candidate_row_count() const noexcept { return offsets_.size() - 1; }

    /// The nb-codebook/v1 mapping backing the candidate index, or nullptr
    /// for an owned (fresh or delta) index.
    const CodebookFile* backing_file() const noexcept { return file_.get(); }

    std::size_t decoy_count() const noexcept { return params_.decoy_count; }
    const SimulationParams& params() const noexcept { return params_; }
    const Graph& graph() const noexcept { return graph_; }

    /// Deterministic estimate of this codebook's resident footprint: the
    /// candidate entry index plus one cached Round of derived material,
    /// computed from the code dimensions (codes themselves are procedural —
    /// seeds and dimensions). An estimate rather than a measurement so the
    /// CodebookCache's byte-accounted eviction is a pure function of the
    /// build parameters, independent of allocator, thread interleaving, and
    /// of whether the index is owned or mmap-borrowed (see DESIGN.md
    /// section 9).
    std::size_t memory_bytes() const;

    /// Order-sensitive structural digest of everything two transports would
    /// share through this codebook: the code geometry, sampled codewords and
    /// distance-code encodings (pure functions of the code seeds), every
    /// node's candidate entry list, and the key-relevant parameters. Two
    /// codebooks with equal fingerprints decode bit-identically; the cache,
    /// delta, and serialization property tests all compare against a fresh
    /// private build through this digest. Stats-neutral and thread-safe.
    std::uint64_t fingerprint() const;

    /// Construction counters for the once-per-transport contract.
    struct Stats {
        std::size_t code_builds = 0;      ///< code-triple constructions (0 when
                                          ///< shared from a delta base)
        std::size_t round_builds = 0;     ///< distinct (messages, nonce) rebuilds
        std::size_t codeword_builds = 0;  ///< beep codewords generated in total
        std::size_t payload_encodes = 0;  ///< distance-code encodings generated

        // Delta-path efficacy counters (all zero on fresh and mmap builds).
        std::size_t dictionary_rows_built = 0;   ///< candidate rows computed
        std::size_t dictionary_rows_reused = 0;  ///< candidate rows copied from a base
        std::size_t delta_full_rebuilds = 0;     ///< delta requests that fell back
        std::size_t codeword_reuses = 0;         ///< codewords copied from a donor round
        std::size_t payload_encode_reuses = 0;   ///< encodings copied from a donor round
    };
    Stats stats() const;

private:
    Codebook(const Graph& graph, const SimulationParams& params,
             std::optional<ShardView> view, std::shared_ptr<const CodebookFile> file);

    /// Per-build generation/reuse tally build_round reports back to round()
    /// so the stats counters move exactly with the work done.
    struct BuildTally {
        std::size_t codewords_generated = 0;
        std::size_t codewords_reused = 0;
        std::size_t encodes_generated = 0;
        std::size_t encodes_reused = 0;
    };

    std::shared_ptr<Round> build_round(const std::vector<std::optional<Bitstring>>& messages,
                                       std::uint64_t nonce,
                                       std::shared_ptr<const Round> donor,
                                       BuildTally& tally) const;

    void build_candidate_index();
    void build_candidate_index_delta(const Codebook& base);
    void adopt_candidate_index();  ///< borrow the CSR from file_
    std::span<const std::uint32_t> candidate_row(std::size_t r) const noexcept {
        return entries_.subspan(offsets_[r], offsets_[r + 1] - offsets_[r]);
    }

    /// The params fields a Codebook is a function of (the CodebookCache key
    /// fields minus the graph) — the compatibility contract for delta builds
    /// and serialized-index adoption.
    static bool same_codebook_params(const SimulationParams& a, const SimulationParams& b);

    /// The node-payload block of the phase-2 decode radii (entries 0..n:
    /// payloads + null) depends only on `messages`, not the nonce, so a
    /// fixed-messages nonce sweep reuses it and each round pays only for
    /// the decoy rows (DistanceCode::extend_decode_gaps). Kept as a small
    /// MRU list rather than one slot: concurrent sweep jobs sharing this
    /// codebook differ exactly in their messages, and a single slot would
    /// thrash — re-running the O(n^2) gap computation every round.
    struct NodeGapCache {
        std::vector<std::optional<Bitstring>> messages;  ///< the cache key
        std::vector<std::uint32_t> gaps;
    };

    /// Node-gap entries kept: sized to exceed any plausible number of
    /// concurrent sweep jobs (each with its own messages) sharing this
    /// codebook — if a live job's entry were evicted between its rounds,
    /// the O(n^2) saving the cache exists for would be lost to thrash.
    static std::size_t node_gap_capacity();

    const Graph& graph_;
    SimulationParams params_;
    std::optional<ShardView> view_;  ///< before combined_: its degree sizes the code
    std::shared_ptr<const CombinedCode> combined_;  ///< shared across delta generations

    /// Candidate entry index, flat CSR. Owned builds fill owned_* and point
    /// the spans at them; mmap builds leave owned_* empty and point the
    /// spans into file_'s mapping (file_ keeps it alive).
    std::vector<std::uint64_t> owned_offsets_;
    std::vector<std::uint32_t> owned_entries_;
    std::span<const std::uint64_t> offsets_;
    std::span<const std::uint32_t> entries_;
    std::shared_ptr<const CodebookFile> file_;

    /// The delta base's cached round (same code geometry guaranteed at
    /// capture): a same-nonce donor for this codebook's first rebuilds, so
    /// churn steps that keep the nonce pay only for what changed.
    std::shared_ptr<const Round> donor_round_;

    mutable std::mutex mutex_;
    mutable std::shared_ptr<const Round> cached_;
    mutable std::list<std::shared_ptr<const NodeGapCache>> node_gaps_;  ///< MRU first
    mutable Stats stats_;
};

}  // namespace nb
