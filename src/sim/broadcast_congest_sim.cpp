#include "sim/broadcast_congest_sim.h"

#include <algorithm>

#include "common/error.h"

namespace nb {

BroadcastCongestOverBeeps::BroadcastCongestOverBeeps(const Graph& graph,
                                                     SimulationParams sim_params,
                                                     CongestParams congest_params)
    : owned_(std::make_unique<BeepTransport>(graph, sim_params)),
      transport_(owned_.get()),
      congest_params_(congest_params) {
    require(congest_params_.message_bits == 0 ||
                congest_params_.message_bits <= sim_params.message_bits,
            "BroadcastCongestOverBeeps: congest message budget exceeds transport capacity");
}

BroadcastCongestOverBeeps::BroadcastCongestOverBeeps(const Transport& transport,
                                                     CongestParams congest_params)
    : transport_(&transport), congest_params_(congest_params) {}

SimulatedRunStats BroadcastCongestOverBeeps::run(
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes, std::size_t max_rounds) {
    const Graph& graph_ = transport_->graph();
    const std::size_t n = graph_.node_count();
    require(nodes.size() == n, "BroadcastCongestOverBeeps: one algorithm per node");
    for (const auto& node : nodes) {
        require(node != nullptr, "BroadcastCongestOverBeeps: null algorithm");
    }

    std::vector<Rng> streams;
    streams.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        streams.push_back(algorithm_stream(congest_params_.algorithm_seed, v));
        const CongestInfo info{n, graph_.max_degree(), congest_params_.message_bits,
                               graph_.degree(v)};
        nodes[v]->initialize(v, info, streams[v]);
    }

    SimulatedRunStats stats;
    std::vector<std::optional<Bitstring>> outbox(n);
    for (std::size_t round = 0; round < max_rounds; ++round) {
        bool someone_active = false;
        for (NodeId v = 0; v < n; ++v) {
            outbox[v].reset();
            if (nodes[v]->finished()) {
                continue;
            }
            someone_active = true;
            outbox[v] = nodes[v]->broadcast(round, streams[v]);
        }
        if (!someone_active) {
            stats.all_finished = true;
            break;
        }

        // One-spec batch on the batched transport API: the algorithm loop is
        // inherently sequential (round r+1's messages depend on round r's
        // deliveries), so the batch cannot grow beyond one round here — but
        // the call still rides the batched path's hoisted setup.
        //
        // RoundSpec::messages is non-owning: `outbox` must stay alive and
        // unmodified until simulate_rounds returns. It does — outbox is
        // declared outside the loop and only rewritten after the call, once
        // deliveries have been handed to the algorithms.
        const RoundSpec spec{&outbox, round, nullptr};
        const TransportRound delivery = std::move(transport_->simulate_rounds({&spec, 1}).front());
        ++stats.congest_rounds;
        stats.beep_rounds += delivery.beep_rounds;
        stats.total_beeps += delivery.total_beeps;
        stats.phase1_false_negatives += delivery.phase1_false_negatives;
        stats.phase1_false_positives += delivery.phase1_false_positives;
        stats.phase2_errors += delivery.phase2_errors;
        if (!delivery.perfect) {
            ++stats.imperfect_rounds;
        }

        for (NodeId v = 0; v < n; ++v) {
            if (!nodes[v]->finished()) {
                nodes[v]->receive(round, delivery.delivered[v], streams[v]);
            }
        }
    }

    if (!stats.all_finished) {
        stats.all_finished = std::all_of(nodes.begin(), nodes.end(),
                                         [](const auto& node) { return node->finished(); });
    }
    return stats;
}

}  // namespace nb
