#include "sim/codebook_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "sim/codebook_cache.h"

namespace nb {

namespace {

constexpr const char* codebook_schema = "nb-codebook/v1";

/// FNV-1a 64 with explicit chaining state — the payload is checksummed as
/// two spans (offsets, then entries) without concatenating them. Same
/// polynomial as ArtifactStore::checksum; duplicated because sim/ must not
/// depend on serve/.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}
constexpr std::uint64_t fnv1a_seed = 0xcbf29ce484222325ULL;

/// fsync the directory so a just-completed rename is durable (best-effort,
/// mirroring the ArtifactStore).
void fsync_parent_directory(const std::string& path) {
    const std::size_t slash = path.rfind('/');
    const std::string directory = slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/// Deletes `path` on scope exit unless disarmed — keeps an I/O exception
/// from leaking a durable-but-unpublished temp into the directory.
class UnlinkGuard {
public:
    explicit UnlinkGuard(std::string path) : path_(std::move(path)) {}
    ~UnlinkGuard() {
        if (armed_) {
            ::unlink(path_.c_str());
        }
    }
    void disarm() noexcept { armed_ = false; }

private:
    std::string path_;
    bool armed_ = true;
};

bool fail(std::string* error, const std::string& reason) {
    if (error != nullptr) {
        *error = reason;
    }
    return false;
}

}  // namespace

CodebookFile::~CodebookFile() {
    if (base_ != nullptr) {
        ::munmap(base_, size_);
    }
}

std::shared_ptr<const CodebookFile> CodebookFile::map(const std::string& path,
                                                      std::string* error) {
    const auto reject = [&](const std::string& reason) -> std::shared_ptr<const CodebookFile> {
        fail(error, "nb-codebook: '" + path + "': " + reason);
        return nullptr;
    };

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return reject(std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return reject("cannot stat or empty");
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (base == MAP_FAILED) {
        return reject("mmap failed");
    }
    // Owns the mapping from here on: any rejection path munmaps via ~CodebookFile.
    std::shared_ptr<CodebookFile> file(new CodebookFile());
    file->base_ = base;
    file->size_ = size;

    const char* text = static_cast<const char*>(base);
    const std::size_t scan = std::min<std::size_t>(size, 4096);
    const void* newline_ptr = std::memchr(text, '\n', scan);
    if (newline_ptr == nullptr) {
        return reject("no header line (torn or foreign file)");
    }
    const auto header_len =
        static_cast<std::size_t>(static_cast<const char*>(newline_ptr) - text) + 1;
    if (header_len % 8 != 0) {
        return reject("header not padded to 8 bytes");
    }

    Header& h = file->header_;
    std::uint64_t rows = 0;
    std::uint64_t entry_count = 0;
    std::uint64_t checksum = 0;
    try {
        const JsonValue header = JsonValue::parse(std::string_view(text, header_len - 1));
        const auto u64 = [&header](const char* key) {
            const JsonValue* field = header.find(key);
            require(field != nullptr, std::string("nb-codebook: header missing '") + key + "'");
            return field->as_uint64();
        };
        const JsonValue* schema = header.find("schema");
        if (schema == nullptr || schema->as_string() != codebook_schema) {
            return reject("schema mismatch");
        }
        h.node_count = u64("node_count");
        h.max_degree = u64("max_degree");
        h.graph_digest = u64("graph_digest");
        h.graph_digest2 = u64("graph_digest2");
        h.shard_digest = u64("shard_digest");
        h.message_bits = u64("message_bits");
        h.c_eps = u64("c_eps");
        h.code_seed = u64("code_seed");
        h.transport_seed = u64("transport_seed");
        h.decoy_count = u64("decoy_count");
        h.bitslice_min_candidates = u64("bitslice_min_candidates");
        h.dictionary = static_cast<std::uint32_t>(u64("dictionary"));
        h.fingerprint = u64("fingerprint");
        rows = u64("rows");
        entry_count = u64("entry_count");
        checksum = u64("checksum");
    } catch (const precondition_error&) {
        return reject("unparseable header (torn or foreign file)");
    }

    // Exact-size check first: every truncation (and any trailing garbage)
    // fails here before the payload is touched. The range pre-checks keep a
    // hostile header's byte counts from wrapping the arithmetic.
    if (rows >= size / sizeof(std::uint64_t) || entry_count > size / sizeof(std::uint32_t)) {
        return reject("size mismatch (truncated or torn file)");
    }
    const std::uint64_t offsets_bytes = (rows + 1) * sizeof(std::uint64_t);
    const std::uint64_t entries_bytes = entry_count * sizeof(std::uint32_t);
    if (size != header_len + offsets_bytes + entries_bytes) {
        return reject("size mismatch (truncated or torn file)");
    }
    const char* payload = text + header_len;
    const std::uint64_t actual =
        fnv1a(fnv1a(fnv1a_seed, payload, offsets_bytes),
              payload + offsets_bytes, entries_bytes);
    if (actual != checksum) {
        return reject("checksum mismatch (corrupt file)");
    }

    // The payload starts 8-aligned (page-aligned base + padded header), so
    // these casts are aligned reads of the mapped bytes.
    file->offsets_ = {reinterpret_cast<const std::uint64_t*>(payload),
                      static_cast<std::size_t>(rows + 1)};
    file->entries_ = {reinterpret_cast<const std::uint32_t*>(payload + offsets_bytes),
                      static_cast<std::size_t>(entry_count)};

    // Structural sanity: downstream decoders index candidate arrays of size
    // node_count + 1 + decoy_count by these values, and Codebook slices rows
    // by the offsets, so both must be in range even for a checksum-valid
    // file written by a buggy builder.
    if (file->offsets_.front() != 0 || file->offsets_.back() != entry_count) {
        return reject("offset table endpoints out of range");
    }
    for (std::size_t r = 0; r < rows; ++r) {
        if (file->offsets_[r] > file->offsets_[r + 1]) {
            return reject("offset table not monotone");
        }
    }
    const std::uint64_t entry_limit = h.node_count + 1 + h.decoy_count;
    for (const std::uint32_t e : file->entries_) {
        if (e >= entry_limit) {
            return reject("entry id out of range");
        }
    }
    return file;
}

void save_codebook(const Codebook& codebook, const std::string& path) {
    const std::span<const std::uint64_t> offsets = codebook.candidate_offsets();
    const std::span<const std::uint32_t> entries = codebook.candidate_entry_data();
    const SimulationParams& params = codebook.params();
    const Codebook::ShardView* view = codebook.shard_view();
    const Graph& graph = codebook.graph();

    const std::uint64_t checksum =
        fnv1a(fnv1a(fnv1a_seed, offsets.data(), offsets.size_bytes()),
              entries.data(), entries.size_bytes());

    std::ostringstream header;
    JsonWriter json(header, /*indent=*/0);
    json.begin_object();
    json.kv("schema", codebook_schema);
    json.kv("node_count", static_cast<std::uint64_t>(graph.node_count()));
    json.kv("max_degree",
            static_cast<std::uint64_t>(view != nullptr ? view->global_max_degree
                                                       : graph.max_degree()));
    json.kv("graph_digest", CodebookCache::graph_digest(graph));
    json.kv("graph_digest2", CodebookCache::graph_digest2(graph));
    json.kv("shard_digest", view != nullptr ? view->digest() : std::uint64_t{0});
    json.kv("message_bits", static_cast<std::uint64_t>(params.message_bits));
    json.kv("c_eps", static_cast<std::uint64_t>(params.c_eps));
    json.kv("code_seed", params.code_seed);
    json.kv("transport_seed", params.transport_seed);
    json.kv("decoy_count", static_cast<std::uint64_t>(params.decoy_count));
    json.kv("bitslice_min_candidates",
            static_cast<std::uint64_t>(params.bitslice_min_candidates));
    json.kv("dictionary", static_cast<std::uint64_t>(params.dictionary));
    json.kv("fingerprint", codebook.fingerprint());
    json.kv("rows", static_cast<std::uint64_t>(codebook.candidate_row_count()));
    json.kv("entry_count", static_cast<std::uint64_t>(entries.size()));
    json.kv("checksum", checksum);
    json.end_object();
    std::string head = header.str();
    // Space-pad so the '\n' lands the binary payload on an 8-byte boundary.
    head.append((8 - (head.size() + 1) % 8) % 8, ' ');
    head.push_back('\n');

    const std::string temp_path = path + ".tmp";
    UnlinkGuard guard(temp_path);
    std::FILE* file = std::fopen(temp_path.c_str(), "wb");
    require(file != nullptr, "nb-codebook: cannot create '" + temp_path + "'");
    const bool written =
        std::fwrite(head.data(), 1, head.size(), file) == head.size() &&
        (offsets.empty() ||
         std::fwrite(offsets.data(), 1, offsets.size_bytes(), file) == offsets.size_bytes()) &&
        (entries.empty() ||
         std::fwrite(entries.data(), 1, entries.size_bytes(), file) == entries.size_bytes()) &&
        std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
    std::fclose(file);
    require(written, "nb-codebook: write failed for '" + temp_path + "'");
    require(std::rename(temp_path.c_str(), path.c_str()) == 0,
            "nb-codebook: cannot publish '" + path + "'");
    guard.disarm();
    fsync_parent_directory(path);
}

}  // namespace nb
