// The per-node decode pipeline of Algorithm 1, factored out of
// BeepTransport so the sharded transport runs the *same* code over shard
// closures: one function, decode_node(), consumes a DecodeContext and
// writes one node's deliveries and diagnostics. Bit-identity between the
// sharded and unsharded transports is then an argument about the context's
// inputs (codewords, schedules, dictionaries, noise streams), not about two
// decode implementations staying in sync (DESIGN.md section 10).
//
// Internal header: included by transport.cpp and sharded_transport.cpp
// only. It also defines TransportBatch::Scratch (forward-declared in
// transport_batch.h), the cross-call scratch both transports keep in the
// caller's batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "beep/batch_engine.h"
#include "codes/decoders.h"
#include "common/bitslice.h"
#include "common/bitstring.h"
#include "common/simd/simd.h"
#include "graph/graph.h"
#include "sim/codebook.h"
#include "sim/transport.h"
#include "sim/transport_batch.h"

namespace nb {
namespace transport_detail {

enum class NodeState : unsigned char { correct, jammer, crashed };

/// Per-node diagnostic deltas, reduced into the round stats in node order
/// after the parallel loop so totals are independent of thread schedule.
struct NodeDiagnostics {
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    std::size_t delivery_mismatches = 0;
};

/// Validate fault ids against `n` nodes and expand them into per-node states.
void build_node_states_into(std::vector<NodeState>& state, std::size_t n,
                            const FaultModel& faults);

/// Reusable per-worker scratch: transcript/gather buffers, acceptance lists,
/// bitslice counters and ground-truth pointers. Lives in the batch scratch,
/// so every buffer reaches steady-state size during the first round of the
/// first batch and is never reallocated again.
struct DecodeWorkspace {
    Bitstring heard1;
    Bitstring heard2;
    Bitstring gathered;
    std::vector<NodeId> accepted_nodes;
    std::vector<std::size_t> accepted_decoys;
    std::vector<std::uint64_t> accept_mask;
    std::vector<std::uint32_t> distances;  ///< phase-2 SoA sweep scratch
    std::vector<std::uint64_t> sort_tmp;   ///< record rotation buffer
    BitsliceScratch slice_scratch;
    std::vector<const Bitstring*> expected;
};

/// The one pointer the decode loop's closure captures: per-round constants
/// and the batch the workers write into. Keeping the closure to a single
/// pointer keeps the std::function conversion at the parallel_for call site
/// inside its small-buffer storage — no per-round allocation.
///
/// `codewords` / `one_positions` are the *fault-free decoding dictionary*
/// for phase 1 and the phase-2 gathers. For BeepTransport they alias the
/// round's own vectors; the sharded transport points them at its assembled
/// copies (owned slots from the local round, halo slots imported from the
/// boundary table). `local_to_global` (nullptr = identity) maps node ids
/// for the batch's slot table, which is always indexed globally.
struct DecodeContext {
    const Graph* graph = nullptr;
    const Codebook* codebook = nullptr;
    const Codebook::Round* round = nullptr;
    const std::vector<Bitstring>* codewords = nullptr;
    const std::vector<std::vector<std::size_t>>* one_positions = nullptr;
    const std::vector<std::optional<Bitstring>>* messages = nullptr;
    const std::vector<Bitstring>* phase1_schedules = nullptr;
    const std::vector<Bitstring>* phase2_schedules = nullptr;
    const BatchEngine* phase1_engine = nullptr;
    const BatchEngine* phase2_engine = nullptr;
    const Phase1Decoder* phase1_decoder = nullptr;
    const DistanceCode* distance_code = nullptr;
    TransportBatch* batch = nullptr;
    std::vector<DecodeWorkspace>* workspaces = nullptr;
    const std::vector<NodeState>* states = nullptr;
    std::vector<NodeDiagnostics>* diagnostics = nullptr;
    const std::uint32_t* local_to_global = nullptr;
    std::size_t round_index = 0;
    std::size_t n = 0;
    std::size_t decoy_count = 0;
    bool bitsliced = false;
    simd::Kernel kernel = simd::Kernel::auto_best;
};

/// Decode node `v` (a local id under sharding) on `worker`'s scratch:
/// phase-1 acceptance, phase-2 nearest-entry decodes, delivery commit into
/// the batch, and this node's diagnostics. Faulty nodes return immediately
/// (their slot stays empty).
void decode_node(const DecodeContext& ctx, std::size_t worker, NodeId v);

}  // namespace transport_detail

/// Everything decode rounds reuse across rounds and batches. Owned by the
/// TransportBatch (caller lifetime), created on its first use; the
/// fault-override schedule vectors stay empty on fault-free workloads.
/// `extension` holds transport-specific state (the sharded transport's
/// per-shard scratch and boundary table) type-erased, so this header stays
/// independent of it.
struct TransportBatch::Scratch {
    std::vector<transport_detail::DecodeWorkspace> workspaces;
    std::vector<transport_detail::NodeState> states;
    std::vector<transport_detail::NodeDiagnostics> diagnostics;
    std::vector<Bitstring> faulty_phase1;
    std::vector<Bitstring> faulty_phase2;
    std::shared_ptr<void> extension;
};

}  // namespace nb
