#include "sim/congest_adapter.h"

#include <algorithm>

#include "common/bitpack.h"
#include "common/error.h"
#include "common/math_util.h"

namespace nb {

// Broadcast layout (fixed width = 2 + 2*id_bits + 1 + B):
//   kind:2   0 = id announce, 1 = data
//   id announce: self:id_bits, rest zero
//   data:        target:id_bits, sender:id_bits, present:1, payload:B
namespace {
constexpr std::uint64_t kind_announce = 0;
constexpr std::uint64_t kind_data = 1;
}  // namespace

CongestViaBroadcastAdapter::CongestViaBroadcastAdapter(std::unique_ptr<CongestAlgorithm> inner,
                                                       std::size_t inner_message_bits)
    : inner_(std::move(inner)), inner_message_bits_(inner_message_bits) {
    require(inner_ != nullptr, "CongestViaBroadcastAdapter: inner algorithm required");
}

std::size_t CongestViaBroadcastAdapter::required_message_bits(std::size_t node_count,
                                                              std::size_t inner_message_bits) {
    const std::size_t id_bits = std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, node_count)));
    return 2 + 2 * id_bits + 1 + inner_message_bits;
}

std::size_t CongestViaBroadcastAdapter::slots_per_superround() const noexcept {
    return std::max<std::size_t>(1, info_.max_degree);
}

void CongestViaBroadcastAdapter::initialize(NodeId self, const CongestInfo& info, Rng& rng) {
    self_ = self;
    info_ = info;
    id_bits_ = std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, info.node_count)));
    require(info.message_bits == 0 ||
                info.message_bits >= required_message_bits(info.node_count, inner_message_bits_),
            "CongestViaBroadcastAdapter: broadcast budget too small for the data layout");
    CongestInfo inner_info = info;
    inner_info.message_bits = inner_message_bits_;
    inner_->initialize(self, inner_info, rng);
}

std::optional<Bitstring> CongestViaBroadcastAdapter::broadcast(std::size_t round, Rng& rng) {
    const std::size_t width = required_message_bits(info_.node_count, inner_message_bits_);
    if (round == 0) {
        BitWriter writer(width);
        writer.write(kind_announce, 2);
        writer.write(self_, id_bits_);
        return writer.bits();
    }
    const std::size_t slots = slots_per_superround();
    const std::size_t superround = (round - 1) / slots;
    const std::size_t slot = (round - 1) % slots;

    if (slot == 0) {
        // Collect this superround's outgoing messages from the inner
        // algorithm, one query per neighbor in ascending id order (matching
        // the native CONGEST engine's query order).
        outgoing_.assign(neighbor_ids_.size(), std::nullopt);
        if (!inner_done_) {
            for (std::size_t i = 0; i < neighbor_ids_.size(); ++i) {
                outgoing_[i] = inner_->send(superround, neighbor_ids_[i], rng);
                if (outgoing_[i].has_value()) {
                    require(outgoing_[i]->size() <= inner_message_bits_,
                            "CongestViaBroadcastAdapter: inner message exceeds budget");
                }
            }
        }
    }
    if (slot >= neighbor_ids_.size() || !outgoing_[slot].has_value()) {
        return std::nullopt;
    }
    BitWriter writer(width);
    writer.write(kind_data, 2);
    writer.write(neighbor_ids_[slot], id_bits_);
    writer.write(self_, id_bits_);
    writer.write(1, 1);
    writer.write_bits(*outgoing_[slot], inner_message_bits_);  // word-wise, zero-padded
    return writer.bits();
}

void CongestViaBroadcastAdapter::receive(std::size_t round, const std::vector<Bitstring>& messages,
                                         Rng& rng) {
    if (round == 0) {
        neighbor_ids_.clear();
        for (const auto& message : messages) {
            BitReader reader(message);
            if (reader.read(2) == kind_announce) {
                neighbor_ids_.push_back(static_cast<NodeId>(reader.read(id_bits_)));
            }
        }
        std::sort(neighbor_ids_.begin(), neighbor_ids_.end());
        neighbor_ids_.erase(std::unique(neighbor_ids_.begin(), neighbor_ids_.end()),
                            neighbor_ids_.end());
        return;
    }
    const std::size_t slots = slots_per_superround();
    const std::size_t superround = (round - 1) / slots;
    const std::size_t slot = (round - 1) % slots;

    for (const auto& message : messages) {
        BitReader reader(message);
        if (reader.read(2) != kind_data) {
            continue;
        }
        const auto target = static_cast<NodeId>(reader.read(id_bits_));
        if (target != self_) {
            continue;
        }
        const auto sender = static_cast<NodeId>(reader.read(id_bits_));
        if (reader.read(1) != 1) {
            continue;
        }
        inbox_.push_back(AddressedMessage{sender, reader.read_bits(inner_message_bits_)});
    }

    if (slot + 1 == slots) {
        std::sort(inbox_.begin(), inbox_.end(),
                  [](const AddressedMessage& a, const AddressedMessage& b) {
                      return a.sender < b.sender;
                  });
        if (!inner_done_) {
            inner_->receive(superround, inbox_, rng);
            if (inner_->finished()) {
                inner_done_ = true;
            }
        }
        inbox_.clear();
        ++superrounds_done_;
    }
}

bool CongestViaBroadcastAdapter::finished() const { return inner_done_; }

CongestOverBeepsResult run_congest_over_beeps(const Graph& graph,
                                              std::vector<std::unique_ptr<CongestAlgorithm>> nodes,
                                              std::size_t inner_message_bits,
                                              SimulationParams sim_params,
                                              std::uint64_t algorithm_seed,
                                              std::size_t max_congest_rounds) {
    const std::size_t width =
        CongestViaBroadcastAdapter::required_message_bits(graph.node_count(), inner_message_bits);
    require(sim_params.message_bits >= width,
            "run_congest_over_beeps: transport message_bits too small for the adapter layout");

    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> adapters;
    adapters.reserve(nodes.size());
    std::vector<CongestViaBroadcastAdapter*> raw;
    for (auto& inner : nodes) {
        auto adapter =
            std::make_unique<CongestViaBroadcastAdapter>(std::move(inner), inner_message_bits);
        raw.push_back(adapter.get());
        adapters.push_back(std::move(adapter));
    }

    CongestParams congest_params;
    congest_params.message_bits = width;
    congest_params.algorithm_seed = algorithm_seed;

    BroadcastCongestOverBeeps engine(graph, sim_params, congest_params);
    const std::size_t slots = std::max<std::size_t>(1, graph.max_degree());
    const std::size_t max_bc_rounds = 1 + max_congest_rounds * slots;

    CongestOverBeepsResult result;
    result.broadcast_stats = engine.run(adapters, max_bc_rounds);
    for (const auto* adapter : raw) {
        result.congest_rounds = std::max(result.congest_rounds,
                                         adapter->congest_rounds_completed());
    }
    result.adapters = std::move(adapters);
    return result;
}

namespace {

CongestAlgorithm& inner_of(const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& adapters,
                           std::size_t v) {
    require(v < adapters.size(), "inner_algorithm: node out of range");
    auto* adapter = dynamic_cast<CongestViaBroadcastAdapter*>(adapters[v].get());
    ensure(adapter != nullptr, "inner_algorithm: not an adapter");
    return adapter->inner();
}

}  // namespace

CongestAlgorithm& CongestOverBeepsResult::inner_algorithm(std::size_t v) const {
    return inner_of(adapters, v);
}

CongestAlgorithm& CongestViaBroadcastResult::inner_algorithm(std::size_t v) const {
    return inner_of(adapters, v);
}

CongestViaBroadcastResult run_congest_via_broadcast(
    const Graph& graph, std::vector<std::unique_ptr<CongestAlgorithm>> nodes,
    std::size_t inner_message_bits, std::uint64_t algorithm_seed,
    std::size_t max_congest_rounds) {
    const std::size_t width =
        CongestViaBroadcastAdapter::required_message_bits(graph.node_count(), inner_message_bits);

    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> adapters;
    adapters.reserve(nodes.size());
    std::vector<CongestViaBroadcastAdapter*> raw;
    for (auto& inner : nodes) {
        auto adapter =
            std::make_unique<CongestViaBroadcastAdapter>(std::move(inner), inner_message_bits);
        raw.push_back(adapter.get());
        adapters.push_back(std::move(adapter));
    }

    CongestParams congest_params;
    congest_params.message_bits = width;
    congest_params.algorithm_seed = algorithm_seed;

    NativeBroadcastCongestEngine engine(graph, congest_params);
    const std::size_t slots = std::max<std::size_t>(1, graph.max_degree());
    const std::size_t max_bc_rounds = 1 + max_congest_rounds * slots;

    CongestViaBroadcastResult result;
    result.broadcast_stats = engine.run(adapters, max_bc_rounds);
    for (const auto* adapter : raw) {
        result.congest_rounds = std::max(result.congest_rounds,
                                         adapter->congest_rounds_completed());
    }
    result.adapters = std::move(adapters);
    return result;
}

}  // namespace nb
