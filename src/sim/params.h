// Parameters of the message-passing-over-beeps simulation (Section 3).
//
// The paper's instantiation for simulating one Broadcast CONGEST round with
// B = gamma*log n message bits on a graph of maximum degree Delta:
//
//   distance code D: (B, 1/3)-distance code of length  c_eps^2 * B
//   beep code     C: (c_eps*B, Delta+1, 1/c_eps)-beep code of length
//                    b = c_eps^3 * (Delta+1) * B, codeword weight c_eps^2 * B
//   Algorithm 1 runs 2*b beep rounds per simulated round.
//
// c_eps is a constant depending only on the noise rate epsilon. The paper's
// proofs need c_eps >= max of five expressions (Lemmas 9 and 10) — hundreds
// for realistic epsilon. That is a worst-case union-bound artifact: much
// smaller constants already give >99% per-round success empirically (bench
// E13 maps the frontier). Mode::paper uses the proof constants; Mode::tuned
// (default) uses a small calibrated constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "beep/channel_model.h"
#include "common/simd/simd.h"

namespace nb {

enum class ConstantsMode {
    paper,  ///< c_eps from the Lemma 9/10 bounds (huge; toy sizes only)
    tuned,  ///< small empirical constant (default)
};

/// Which candidate inputs a node's decoder tests (see DESIGN.md section 3).
enum class DictionaryPolicy {
    all_nodes,  ///< every node's input this round + decoys (exact, O(n) per node)
    two_hop,    ///< inputs of nodes within 2 hops + decoys (the only inputs
                ///< correlated with the transcript; far inputs are i.i.d.
                ///< uniform like decoys). Default.
};

struct SimulationParams {
    /// Design noise rate in [0, 1/2): the epsilon the decoder thresholds
    /// (Lemma 9 acceptance, paper_c_eps) are sized for. With the default
    /// `channel` (nullopt) it is also the physical channel's iid flip rate —
    /// the paper's model, where the two coincide.
    double epsilon = 0.0;

    /// The physical channel process. nullopt (default) means the paper's
    /// iid(epsilon) channel — existing epsilon-only call sites behave
    /// exactly as before. A non-iid model decouples the physical channel
    /// from the design epsilon above; the decoders keep their iid-designed
    /// thresholds and the diagnostics measure what survives (DESIGN.md
    /// section 6).
    std::optional<ChannelModel> channel;

    /// Per-message bit budget B = gamma * ceil(log2 n).
    std::size_t message_bits = 16;

    /// The constant c_eps (integer >= 3 so that beep-code codewords cannot
    /// trivially over-intersect; Theorem 4 notes c <= 2 is degenerate).
    std::size_t c_eps = 4;

    /// Shared public randomness defining the codes C and D. All nodes use
    /// the same seed (the code is common knowledge, as in the paper).
    std::uint64_t code_seed = 0x636f6465u;

    /// Randomness for per-round codeword picks, decoys, and channel noise.
    std::uint64_t transport_seed = 0x7472616eu;

    /// Independent decoy inputs added to every decoding dictionary so that
    /// false-positive acceptance is measured honestly.
    std::size_t decoy_count = 32;

    DictionaryPolicy dictionary = DictionaryPolicy::two_hop;

    /// Worker threads for the per-node decode loop in simulate_round
    /// (0 = hardware concurrency). Outputs are bit-identical for every
    /// thread count; this only trades wall-clock for cores.
    std::size_t threads = 0;

    /// Candidate-count threshold at which all_nodes rounds transpose the
    /// codewords into a BitsliceMatrix and phase-1-decode with the
    /// bitsliced kernel instead of the per-candidate scalar loop (0 forces
    /// bitslicing, SIZE_MAX disables it). Outputs are bit-identical either
    /// way — the threshold only selects the faster kernel; the default is
    /// the measured crossover on popcount-capable hardware.
    std::size_t bitslice_min_candidates = 512;

    /// Decode kernel set for this transport's hot loops (phase-1 bitslice
    /// pass, phase-2 Hamming scans, missing-ones counts). auto_best (the
    /// default) resolves through the NB_SIMD_KERNEL environment variable and
    /// then CPU detection; an explicit unavailable kernel falls back to the
    /// best supported one (simd::resolve_kernel reports what ran). Every
    /// kernel computes bit-identical results — this selects vector width,
    /// never values — so the field is deliberately NOT part of the codebook
    /// cache key or any fingerprint.
    simd::Kernel simd_kernel = simd::Kernel::auto_best;

    /// Consult the process-wide CodebookCache (sim/codebook_cache.h)
    /// instead of building a private Codebook: transports agreeing on the
    /// codebook-relevant fields (graph adjacency, message_bits, c_eps,
    /// seeds, decoy_count, dictionary, bitslice threshold — NOT epsilon,
    /// channel, or threads) share one build. Outputs are bit-identical
    /// either way (golden-pinned); false restores the once-per-transport
    /// build whose Codebook::stats() count only this transport's work.
    bool shared_codebook = true;

    /// Validate ranges; throws precondition_error.
    void validate() const;

    /// The effective channel the transports drive the engines with:
    /// `channel` if set, else the paper's iid(epsilon).
    ChannelModel channel_model() const {
        return channel.has_value() ? *channel : ChannelModel::iid(epsilon);
    }

    /// The paper-proof constant for this epsilon: the max of the bounds
    /// required by Lemmas 8, 9 and 10 (and the c_eps >= 108 blanket choice
    /// for the distance code in Section 3). For epsilon = 0 the noise terms
    /// vanish and the distance-code requirement dominates.
    static std::size_t paper_c_eps(double epsilon);

    /// Derived code dimensions (Section 3 instantiation).
    std::size_t payload_bits() const noexcept;           ///< B + 1 presence flag
    std::size_t distance_code_length() const noexcept;   ///< c_eps^2 * payload_bits
    std::size_t beep_code_input_bits() const noexcept;   ///< a = c_eps * payload_bits
    std::size_t beep_code_length(std::size_t delta) const noexcept;  ///< b
    /// Algorithm 1 cost: 2*b beep rounds per Broadcast CONGEST round.
    std::size_t rounds_per_broadcast_round(std::size_t delta) const noexcept;
};

}  // namespace nb
