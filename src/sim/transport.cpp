#include "sim/transport.h"

#include <future>

#include "beep/batch_engine.h"
#include "common/cancel.h"
#include "common/error.h"
#include "sim/decode_core.h"

namespace nb {

using transport_detail::DecodeContext;
using transport_detail::DecodeWorkspace;
using transport_detail::NodeState;
using transport_detail::build_node_states_into;

TransportRound Transport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce) const {
    const RoundSpec spec{&messages, round_nonce, nullptr};
    return std::move(simulate_rounds({&spec, 1}).front());
}

BeepTransport::BeepTransport(const Graph& graph, SimulationParams params)
    : graph_(graph), params_(params) {
    params_.validate();
    if (params_.shared_codebook) {
        // The cached build owns its own graph copy (structurally equal to
        // graph_, enforced by the cache key), so eviction or this
        // transport's death never dangles anything.
        shared_codebook_ = CodebookCache::instance().acquire(graph_, params_);
        codebook_ = &shared_codebook_->codebook();
    } else {
        owned_codebook_ = std::make_unique<Codebook>(graph_, params_);
        codebook_ = owned_codebook_.get();
    }
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::worker_count_for(params_.threads, graph_.node_count()));
}

std::size_t BeepTransport::rounds_per_broadcast_round() const {
    return params_.rounds_per_broadcast_round(graph_.max_degree());
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce,
    const FaultModel& faults) const {
    const RoundSpec spec{&messages, round_nonce, &faults};
    return std::move(simulate_rounds({&spec, 1}).front());
}

std::vector<TransportRound> BeepTransport::simulate_rounds(
    std::span<const RoundSpec> specs) const {
    // The compatibility bridge: decode into a throwaway batch, then convert
    // each round to the owning TransportRound shape. Callers that care about
    // allocation rates use simulate_rounds_into with a reused batch.
    TransportBatch batch;
    simulate_rounds_into(specs, batch);
    std::vector<TransportRound> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results.push_back(batch.to_round(i));
    }
    return results;
}

void BeepTransport::simulate_rounds_into(std::span<const RoundSpec> specs,
                                         TransportBatch& batch) const {
    const std::size_t n = graph_.node_count();
    for (const auto& spec : specs) {
        require(spec.messages != nullptr, "BeepTransport::simulate_rounds: null messages");
        require(spec.messages->size() == n, "BeepTransport: one message slot per node");
    }

    if (batch.scratch_ == nullptr) {
        batch.scratch_ = std::make_shared<TransportBatch::Scratch>();
    }
    batch.prepare(specs.size(), n, params_.message_bits, pool_->worker_count());
    if (batch.scratch_->workspaces.size() < pool_->worker_count()) {
        batch.scratch_->workspaces.resize(pool_->worker_count());
    }
    if (specs.empty()) {
        return;
    }
    for (const auto& spec : specs) {
        if (spec.faults != nullptr) {
            // Fail fast on bad fault ids before any decoding starts.
            build_node_states_into(batch.scratch_->states, n, *spec.faults);
        }
    }

    // Pipeline: while round i is decoding on the pool, a builder task
    // derives round i+1's Codebook::Round (codewords, schedules, slices,
    // radii) for its nonce. Builds are pure functions of (messages, nonce),
    // so overlapping them with decoding cannot change any output. With a
    // single worker the pipeline would only add synchronization, so the
    // batch degenerates to build-then-decode per spec.
    const auto build = [this](const RoundSpec& spec) {
        return codebook_->round(*spec.messages, spec.nonce);
    };
    const bool pipelined = pool_->worker_count() > 1 && specs.size() > 1;
    std::shared_ptr<const Codebook::Round> current = build(specs.front());
    std::future<std::shared_ptr<const Codebook::Round>> next;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // Round boundary: a sweep job past its watchdog deadline (or an
        // explicitly cancelled one) unwinds here rather than finishing the
        // whole batch. The builder future, if in flight, is joined by its
        // destructor during unwind, so no task outlives the call.
        cancel_poll();
        if (pipelined && i + 1 < specs.size()) {
            next = std::async(std::launch::async, build, std::cref(specs[i + 1]));
        }
        decode_round_into(*current, specs[i], i, batch);
        if (i + 1 < specs.size()) {
            current = pipelined ? next.get() : build(specs[i + 1]);
        }
    }
}

void BeepTransport::decode_round_into(const Codebook::Round& round, const RoundSpec& spec,
                                      std::size_t round_index, TransportBatch& batch) const {
    const std::size_t n = graph_.node_count();
    TransportBatch::Scratch& scratch = *batch.scratch_;
    static const FaultModel no_faults{};
    const FaultModel& faults = spec.faults != nullptr ? *spec.faults : no_faults;

    build_node_states_into(scratch.states, n, faults);
    const std::size_t b = codebook_->beep_length();

    // Phase schedules: the cached fault-free ones (codewords and combined
    // codewords) unless faults force per-node overrides — jammers transmit
    // all-ones, crashed nodes all-zeros, in both phases. The decoding
    // dictionary stays the cached codewords: decoders have no fault
    // knowledge. The override vectors are batch scratch: element-wise
    // copy-assignment reuses each Bitstring's word storage once warm.
    const std::vector<Bitstring>* phase1_schedules = &round.codewords;
    const std::vector<Bitstring>* phase2_schedules = &round.combined_schedules;
    if (!faults.empty()) {
        scratch.faulty_phase1 = round.codewords;
        scratch.faulty_phase2 = round.combined_schedules;
        for (NodeId v = 0; v < n; ++v) {
            if (scratch.states[v] == NodeState::jammer) {
                scratch.faulty_phase1[v] = ~Bitstring(b);
                scratch.faulty_phase2[v] = ~Bitstring(b);
            } else if (scratch.states[v] == NodeState::crashed) {
                scratch.faulty_phase1[v] = Bitstring(b);
                scratch.faulty_phase2[v] = Bitstring(b);
            }
        }
        phase1_schedules = &scratch.faulty_phase1;
        phase2_schedules = &scratch.faulty_phase2;
    }

    // The physical channel: iid(params_.epsilon) by default, or whatever
    // ChannelModel the params carry. Decoder thresholds below keep using the
    // design epsilon regardless of the physical model.
    const BatchParams channel{params_.channel_model(), false};
    const BatchEngine phase1_engine(graph_, channel, round.rng.derive(0x70683161u));
    const BatchEngine phase2_engine(graph_, channel, round.rng.derive(0x70683262u));
    // Schedule sets are validated once per round here, not once per node
    // inside hear_into — that revalidation made decoding O(n^2) in require
    // checks.
    phase1_engine.check_schedules(*phase1_schedules);
    phase2_engine.check_schedules(*phase2_schedules);

    TransportRoundStats& stats = batch.stats_[round_index];
    stats.beep_rounds = 2 * b;
    stats.total_beeps =
        faults.empty() ? round.phase1_beeps + round.phase2_beeps
                       : BatchEngine::total_beeps(*phase1_schedules) +
                             BatchEngine::total_beeps(*phase2_schedules);

    const Phase1Decoder phase1_decoder(codebook_->beep_code(), params_.epsilon);

    scratch.diagnostics.assign(n, transport_detail::NodeDiagnostics{});

    DecodeContext ctx;
    ctx.graph = &graph_;
    ctx.codebook = codebook_;
    ctx.round = &round;
    ctx.codewords = &round.codewords;
    ctx.one_positions = &round.one_positions;
    ctx.messages = spec.messages;
    ctx.phase1_schedules = phase1_schedules;
    ctx.phase2_schedules = phase2_schedules;
    ctx.phase1_engine = &phase1_engine;
    ctx.phase2_engine = &phase2_engine;
    ctx.phase1_decoder = &phase1_decoder;
    ctx.distance_code = &codebook_->distance_code();
    ctx.batch = &batch;
    ctx.workspaces = &scratch.workspaces;
    ctx.states = &scratch.states;
    ctx.diagnostics = &scratch.diagnostics;
    ctx.round_index = round_index;
    ctx.n = n;
    ctx.decoy_count = codebook_->decoy_count();
    ctx.bitsliced = !round.codeword_slices.empty();
    // Resolved once per round: what params_.simd_kernel actually runs as on
    // this build/CPU (auto_best defers to NB_SIMD_KERNEL, then detection).
    ctx.kernel = simd::resolve_kernel(params_.simd_kernel);

    pool_->parallel_for(n, [&ctx](std::size_t worker, std::size_t node) {
        transport_detail::decode_node(ctx, worker, static_cast<NodeId>(node));
    });

    for (const auto& diag : scratch.diagnostics) {
        stats.phase1_false_negatives += diag.phase1_false_negatives;
        stats.phase1_false_positives += diag.phase1_false_positives;
        stats.phase2_errors += diag.phase2_errors;
        stats.delivery_mismatches += diag.delivery_mismatches;
    }
    stats.perfect = stats.delivery_mismatches == 0;
}

}  // namespace nb
