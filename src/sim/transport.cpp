#include "sim/transport.h"

#include <algorithm>
#include <unordered_set>

#include "beep/batch_engine.h"
#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {

namespace {

/// Pad/flag an optional algorithm message into a transport payload:
/// bit 0 = presence, bits 1..message_bits = the message (zero-padded).
Bitstring make_payload(const std::optional<Bitstring>& message, std::size_t message_bits) {
    Bitstring payload(message_bits + 1);
    if (message.has_value()) {
        require(message->size() <= message_bits,
                "BeepTransport: message exceeds the bit budget");
        payload.set(0);
        message->for_each_one([&payload](std::size_t i) { payload.set(1 + i); });
    }
    return payload;
}

/// Inverse of make_payload for a decoded payload with presence bit set.
Bitstring extract_message(const Bitstring& payload) {
    Bitstring message(payload.size() - 1);
    for (std::size_t i = 1; i < payload.size(); ++i) {
        if (payload.test(i)) {
            message.set(i - 1);
        }
    }
    return message;
}

}  // namespace

BeepTransport::BeepTransport(const Graph& graph, SimulationParams params)
    : graph_(graph), params_(params) {
    params_.validate();
    if (params_.dictionary == DictionaryPolicy::two_hop) {
        two_hop_.resize(graph_.node_count());
        for (NodeId v = 0; v < graph_.node_count(); ++v) {
            std::unordered_set<NodeId> reachable;
            for (const auto u : graph_.neighbors(v)) {
                reachable.insert(u);
                for (const auto w : graph_.neighbors(u)) {
                    if (w != v) {
                        reachable.insert(w);
                    }
                }
            }
            two_hop_[v].assign(reachable.begin(), reachable.end());
            std::sort(two_hop_[v].begin(), two_hop_[v].end());
        }
    }
}

std::size_t BeepTransport::rounds_per_broadcast_round() const {
    return params_.rounds_per_broadcast_round(graph_.max_degree());
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce) const {
    return simulate_round(messages, round_nonce, FaultModel{});
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce,
    const FaultModel& faults) const {
    const std::size_t n = graph_.node_count();
    require(messages.size() == n, "BeepTransport::simulate_round: one message slot per node");

    enum class NodeState : unsigned char { correct, jammer, crashed };
    std::vector<NodeState> state(n, NodeState::correct);
    for (const auto v : faults.jammers) {
        require(v < n, "BeepTransport: jammer id out of range");
        state[v] = NodeState::jammer;
    }
    for (const auto v : faults.crashed) {
        require(v < n, "BeepTransport: crashed id out of range");
        require(state[v] == NodeState::correct, "BeepTransport: node cannot jam and crash");
        state[v] = NodeState::crashed;
    }

    const std::size_t delta = graph_.max_degree();
    const std::size_t payload_bits = params_.payload_bits();
    const std::size_t weight = params_.distance_code_length();
    const std::size_t b = params_.beep_code_length(delta);

    // Public codes, fixed across rounds.
    const BeepCode beep_code(b, weight, params_.code_seed);
    const DistanceCode distance_code(payload_bits, weight, mix64(params_.code_seed ^ 0x64636f64u));
    const CombinedCode combined(beep_code, distance_code);

    // Fresh per-round randomness.
    const Rng round_rng = Rng(params_.transport_seed).derive(0x726f756eu, round_nonce);

    // Per-node payloads and inputs r_v.
    std::vector<Bitstring> payloads;
    std::vector<std::uint64_t> inputs(n);
    payloads.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        payloads.push_back(make_payload(messages[v], params_.message_bits));
        inputs[v] = round_rng.derive(0x7069636bu, v).next_u64();
    }

    // Decoys: inputs and payloads drawn independently of everything heard.
    std::vector<std::uint64_t> decoy_inputs(params_.decoy_count);
    std::vector<Bitstring> decoy_payloads;
    decoy_payloads.reserve(params_.decoy_count);
    for (std::size_t i = 0; i < params_.decoy_count; ++i) {
        Rng decoy_rng = round_rng.derive(0x6465636fu, i);
        decoy_inputs[i] = decoy_rng.next_u64();
        decoy_payloads.push_back(Bitstring::random(decoy_rng, payload_bits));
    }

    // The decoding dictionary: C(r_u) for every node — what a correct
    // decoder believes each node transmits. Phase-1 schedules equal these
    // codewords for correct nodes; jammers transmit all-ones and crashed
    // nodes all-zeros instead (but the dictionary stays the codewords:
    // decoders have no fault knowledge).
    std::vector<Bitstring> codewords;
    codewords.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        codewords.push_back(beep_code.codeword(inputs[v]));
    }
    std::vector<Bitstring> phase1_schedules = codewords;
    for (NodeId v = 0; v < n; ++v) {
        if (state[v] == NodeState::jammer) {
            phase1_schedules[v] = ~Bitstring(b);
        } else if (state[v] == NodeState::crashed) {
            phase1_schedules[v] = Bitstring(b);
        }
    }
    std::vector<Bitstring> decoy_codewords;
    decoy_codewords.reserve(params_.decoy_count);
    for (const auto r : decoy_inputs) {
        decoy_codewords.push_back(beep_code.codeword(r));
    }

    const BatchParams channel{ChannelParams{params_.epsilon, true}, false};
    const BatchEngine phase1_engine(graph_, channel, round_rng.derive(0x70683161u));
    const BatchEngine phase2_engine(graph_, channel, round_rng.derive(0x70683262u));

    // Phase 2 schedules: combined codewords CD(r_v, payload_v).
    std::vector<Bitstring> phase2_schedules;
    phase2_schedules.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        switch (state[v]) {
            case NodeState::correct:
                phase2_schedules.push_back(combined.encode(inputs[v], payloads[v]));
                break;
            case NodeState::jammer:
                phase2_schedules.push_back(~Bitstring(b));
                break;
            case NodeState::crashed:
                phase2_schedules.push_back(Bitstring(b));
                break;
        }
    }

    TransportRound result;
    result.beep_rounds = 2 * b;
    result.total_beeps =
        BatchEngine::total_beeps(phase1_schedules) + BatchEngine::total_beeps(phase2_schedules);
    result.delivered.resize(n);

    const Phase1Decoder phase1_decoder(beep_code, params_.epsilon);

    // Reusable scratch for the phase-2 candidate payload dictionary.
    std::vector<Bitstring> payload_candidates;

    for (NodeId v = 0; v < n; ++v) {
        if (state[v] != NodeState::correct) {
            continue;  // faulty nodes produce no output (delivered stays empty)
        }
        const Bitstring heard1 = phase1_engine.hear(v, phase1_schedules);

        // Candidate node inputs for this decoder.
        std::span<const NodeId> candidate_nodes;
        std::vector<NodeId> all_nodes;
        if (params_.dictionary == DictionaryPolicy::two_hop) {
            candidate_nodes = two_hop_[v];
        } else {
            all_nodes.resize(n);
            for (NodeId u = 0; u < n; ++u) {
                all_nodes[u] = u;
            }
            candidate_nodes = all_nodes;
        }

        // Phase 1 decode: which candidate inputs pass the Lemma 9 test.
        std::vector<NodeId> accepted_nodes;
        for (const auto u : candidate_nodes) {
            if (u != v && phase1_decoder.accepts_codeword(heard1, codewords[u])) {
                accepted_nodes.push_back(u);
            }
        }
        // The node's own input is known; the paper includes it in R_v
        // (inclusive neighborhood) but it carries no foreign message.
        std::vector<std::size_t> accepted_decoys;
        for (std::size_t i = 0; i < decoy_codewords.size(); ++i) {
            if (phase1_decoder.accepts_codeword(heard1, decoy_codewords[i])) {
                accepted_decoys.push_back(i);
            }
        }

        // Diagnostics: accepted vs the set of *correct* transmitting
        // neighbors (faulty neighbors never transmitted their codeword, so
        // accepting one counts as a false positive).
        std::size_t true_accepted = 0;
        for (const auto u : accepted_nodes) {
            if (graph_.has_edge(u, v) && state[u] == NodeState::correct) {
                ++true_accepted;
            } else {
                ++result.phase1_false_positives;
            }
        }
        result.phase1_false_positives += accepted_decoys.size();
        std::size_t correct_neighbors = 0;
        for (const auto u : graph_.neighbors(v)) {
            correct_neighbors += state[u] == NodeState::correct ? 1 : 0;
        }
        result.phase1_false_negatives += correct_neighbors - true_accepted;

        // Phase 2 decode for every accepted foreign input.
        const Bitstring heard2 = phase2_engine.hear(v, phase2_schedules);

        payload_candidates.clear();
        for (const auto u : candidate_nodes) {
            payload_candidates.push_back(payloads[u]);
        }
        payload_candidates.push_back(Bitstring(payload_bits));  // the null payload
        for (const auto& decoy : decoy_payloads) {
            payload_candidates.push_back(decoy);
        }

        auto decode_for_positions = [&](const std::vector<std::size_t>& positions) {
            const Bitstring received = heard2.gather(positions);
            return distance_code.decode(received, payload_candidates);
        };

        for (const auto u : accepted_nodes) {
            const auto decoded = decode_for_positions(codewords[u].one_positions());
            ensure(decoded.has_value(), "BeepTransport: empty phase-2 dictionary");
            if (graph_.has_edge(u, v) && state[u] == NodeState::correct &&
                decoded->message != payloads[u]) {
                ++result.phase2_errors;
            }
            if (decoded->message.test(0)) {
                result.delivered[v].push_back(extract_message(decoded->message));
            }
        }
        for (const auto i : accepted_decoys) {
            const auto decoded = decode_for_positions(decoy_codewords[i].one_positions());
            ensure(decoded.has_value(), "BeepTransport: empty phase-2 dictionary");
            if (decoded->message.test(0)) {
                result.delivered[v].push_back(extract_message(decoded->message));
            }
        }
        sort_messages(result.delivered[v]);

        // Ground-truth delivery for the mismatch diagnostic: faulty
        // neighbors' messages are lost by definition.
        std::vector<Bitstring> expected;
        for (const auto u : graph_.neighbors(v)) {
            if (messages[u].has_value() && state[u] == NodeState::correct) {
                expected.push_back(extract_message(payloads[u]));
            }
        }
        sort_messages(expected);
        if (expected != result.delivered[v]) {
            ++result.delivery_mismatches;
        }
    }

    result.perfect = result.delivery_mismatches == 0;
    return result;
}

}  // namespace nb
