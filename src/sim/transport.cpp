#include "sim/transport.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <future>

#include "beep/batch_engine.h"
#include "common/cancel.h"
#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {

namespace {

enum class NodeState : unsigned char { correct, jammer, crashed };

/// Per-node diagnostic deltas, reduced into the round stats in node order
/// after the parallel loop so totals are independent of thread schedule.
struct NodeDiagnostics {
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    std::size_t delivery_mismatches = 0;
};

void build_node_states_into(std::vector<NodeState>& state, std::size_t n,
                            const FaultModel& faults) {
    state.assign(n, NodeState::correct);
    for (const auto v : faults.jammers) {
        require(v < n, "BeepTransport: jammer id out of range");
        state[v] = NodeState::jammer;
    }
    for (const auto v : faults.crashed) {
        require(v < n, "BeepTransport: crashed id out of range");
        // Duplicate entries within one list are idempotent; only the
        // contradictory jammer+crashed combination is rejected.
        require(state[v] != NodeState::jammer, "BeepTransport: node cannot jam and crash");
        state[v] = NodeState::crashed;
    }
}

/// Reusable per-worker scratch: transcript/gather buffers, acceptance lists,
/// bitslice counters and ground-truth pointers. Lives in the batch scratch,
/// so every buffer reaches steady-state size during the first round of the
/// first batch and is never reallocated again.
struct DecodeWorkspace {
    Bitstring heard1;
    Bitstring heard2;
    Bitstring gathered;
    std::vector<NodeId> accepted_nodes;
    std::vector<std::size_t> accepted_decoys;
    std::vector<std::uint64_t> accept_mask;
    std::vector<std::uint32_t> distances;  ///< phase-2 SoA sweep scratch
    std::vector<std::uint64_t> sort_tmp;   ///< record rotation buffer
    BitsliceScratch slice_scratch;
    std::vector<const Bitstring*> expected;
};

}  // namespace

/// Everything decode_round_into reuses across rounds and batches. Owned by
/// the TransportBatch (caller lifetime), created on its first use; the
/// fault-override schedule vectors stay empty on fault-free workloads.
struct TransportBatch::Scratch {
    std::vector<DecodeWorkspace> workspaces;
    std::vector<NodeState> states;
    std::vector<NodeDiagnostics> diagnostics;
    std::vector<Bitstring> faulty_phase1;
    std::vector<Bitstring> faulty_phase2;
};

namespace {

/// The one pointer the decode loop's closure captures: per-round constants
/// and the batch the workers write into. Keeping the closure to a single
/// pointer keeps the std::function conversion at the parallel_for call site
/// inside its small-buffer storage — no per-round allocation.
struct DecodeContext {
    const Graph* graph = nullptr;
    const Codebook* codebook = nullptr;
    const Codebook::Round* round = nullptr;
    const std::vector<std::optional<Bitstring>>* messages = nullptr;
    const std::vector<Bitstring>* phase1_schedules = nullptr;
    const std::vector<Bitstring>* phase2_schedules = nullptr;
    const BatchEngine* phase1_engine = nullptr;
    const BatchEngine* phase2_engine = nullptr;
    const Phase1Decoder* phase1_decoder = nullptr;
    const DistanceCode* distance_code = nullptr;
    TransportBatch* batch = nullptr;
    std::vector<DecodeWorkspace>* workspaces = nullptr;
    const std::vector<NodeState>* states = nullptr;
    std::vector<NodeDiagnostics>* diagnostics = nullptr;
    std::size_t round_index = 0;
    std::size_t n = 0;
    std::size_t decoy_count = 0;
    bool bitsliced = false;
    simd::Kernel kernel = simd::Kernel::auto_best;
};

}  // namespace

TransportRound Transport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce) const {
    const RoundSpec spec{&messages, round_nonce, nullptr};
    return std::move(simulate_rounds({&spec, 1}).front());
}

BeepTransport::BeepTransport(const Graph& graph, SimulationParams params)
    : graph_(graph), params_(params) {
    params_.validate();
    if (params_.shared_codebook) {
        // The cached build owns its own graph copy (structurally equal to
        // graph_, enforced by the cache key), so eviction or this
        // transport's death never dangles anything.
        shared_codebook_ = CodebookCache::instance().acquire(graph_, params_);
        codebook_ = &shared_codebook_->codebook();
    } else {
        owned_codebook_ = std::make_unique<Codebook>(graph_, params_);
        codebook_ = owned_codebook_.get();
    }
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::worker_count_for(params_.threads, graph_.node_count()));
}

std::size_t BeepTransport::rounds_per_broadcast_round() const {
    return params_.rounds_per_broadcast_round(graph_.max_degree());
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce,
    const FaultModel& faults) const {
    const RoundSpec spec{&messages, round_nonce, &faults};
    return std::move(simulate_rounds({&spec, 1}).front());
}

std::vector<TransportRound> BeepTransport::simulate_rounds(
    std::span<const RoundSpec> specs) const {
    // The compatibility bridge: decode into a throwaway batch, then convert
    // each round to the owning TransportRound shape. Callers that care about
    // allocation rates use simulate_rounds_into with a reused batch.
    TransportBatch batch;
    simulate_rounds_into(specs, batch);
    std::vector<TransportRound> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results.push_back(batch.to_round(i));
    }
    return results;
}

void BeepTransport::simulate_rounds_into(std::span<const RoundSpec> specs,
                                         TransportBatch& batch) const {
    const std::size_t n = graph_.node_count();
    for (const auto& spec : specs) {
        require(spec.messages != nullptr, "BeepTransport::simulate_rounds: null messages");
        require(spec.messages->size() == n, "BeepTransport: one message slot per node");
    }

    if (batch.scratch_ == nullptr) {
        batch.scratch_ = std::make_shared<TransportBatch::Scratch>();
    }
    batch.prepare(specs.size(), n, params_.message_bits, pool_->worker_count());
    if (batch.scratch_->workspaces.size() < pool_->worker_count()) {
        batch.scratch_->workspaces.resize(pool_->worker_count());
    }
    if (specs.empty()) {
        return;
    }
    for (const auto& spec : specs) {
        if (spec.faults != nullptr) {
            // Fail fast on bad fault ids before any decoding starts.
            build_node_states_into(batch.scratch_->states, n, *spec.faults);
        }
    }

    // Pipeline: while round i is decoding on the pool, a builder task
    // derives round i+1's Codebook::Round (codewords, schedules, slices,
    // radii) for its nonce. Builds are pure functions of (messages, nonce),
    // so overlapping them with decoding cannot change any output. With a
    // single worker the pipeline would only add synchronization, so the
    // batch degenerates to build-then-decode per spec.
    const auto build = [this](const RoundSpec& spec) {
        return codebook_->round(*spec.messages, spec.nonce);
    };
    const bool pipelined = pool_->worker_count() > 1 && specs.size() > 1;
    std::shared_ptr<const Codebook::Round> current = build(specs.front());
    std::future<std::shared_ptr<const Codebook::Round>> next;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // Round boundary: a sweep job past its watchdog deadline (or an
        // explicitly cancelled one) unwinds here rather than finishing the
        // whole batch. The builder future, if in flight, is joined by its
        // destructor during unwind, so no task outlives the call.
        cancel_poll();
        if (pipelined && i + 1 < specs.size()) {
            next = std::async(std::launch::async, build, std::cref(specs[i + 1]));
        }
        decode_round_into(*current, specs[i], i, batch);
        if (i + 1 < specs.size()) {
            current = pipelined ? next.get() : build(specs[i + 1]);
        }
    }
}

void BeepTransport::decode_round_into(const Codebook::Round& round, const RoundSpec& spec,
                                      std::size_t round_index, TransportBatch& batch) const {
    const std::size_t n = graph_.node_count();
    TransportBatch::Scratch& scratch = *batch.scratch_;
    static const FaultModel no_faults{};
    const FaultModel& faults = spec.faults != nullptr ? *spec.faults : no_faults;

    build_node_states_into(scratch.states, n, faults);
    const std::size_t b = codebook_->beep_length();

    // Phase schedules: the cached fault-free ones (codewords and combined
    // codewords) unless faults force per-node overrides — jammers transmit
    // all-ones, crashed nodes all-zeros, in both phases. The decoding
    // dictionary stays the cached codewords: decoders have no fault
    // knowledge. The override vectors are batch scratch: element-wise
    // copy-assignment reuses each Bitstring's word storage once warm.
    const std::vector<Bitstring>* phase1_schedules = &round.codewords;
    const std::vector<Bitstring>* phase2_schedules = &round.combined_schedules;
    if (!faults.empty()) {
        scratch.faulty_phase1 = round.codewords;
        scratch.faulty_phase2 = round.combined_schedules;
        for (NodeId v = 0; v < n; ++v) {
            if (scratch.states[v] == NodeState::jammer) {
                scratch.faulty_phase1[v] = ~Bitstring(b);
                scratch.faulty_phase2[v] = ~Bitstring(b);
            } else if (scratch.states[v] == NodeState::crashed) {
                scratch.faulty_phase1[v] = Bitstring(b);
                scratch.faulty_phase2[v] = Bitstring(b);
            }
        }
        phase1_schedules = &scratch.faulty_phase1;
        phase2_schedules = &scratch.faulty_phase2;
    }

    // The physical channel: iid(params_.epsilon) by default, or whatever
    // ChannelModel the params carry. Decoder thresholds below keep using the
    // design epsilon regardless of the physical model.
    const BatchParams channel{params_.channel_model(), false};
    const BatchEngine phase1_engine(graph_, channel, round.rng.derive(0x70683161u));
    const BatchEngine phase2_engine(graph_, channel, round.rng.derive(0x70683262u));
    // Schedule sets are validated once per round here, not once per node
    // inside hear_into — that revalidation made decoding O(n^2) in require
    // checks.
    phase1_engine.check_schedules(*phase1_schedules);
    phase2_engine.check_schedules(*phase2_schedules);

    TransportRoundStats& stats = batch.stats_[round_index];
    stats.beep_rounds = 2 * b;
    stats.total_beeps =
        faults.empty() ? round.phase1_beeps + round.phase2_beeps
                       : BatchEngine::total_beeps(*phase1_schedules) +
                             BatchEngine::total_beeps(*phase2_schedules);

    const Phase1Decoder phase1_decoder(codebook_->beep_code(), params_.epsilon);

    scratch.diagnostics.assign(n, NodeDiagnostics{});

    DecodeContext ctx;
    ctx.graph = &graph_;
    ctx.codebook = codebook_;
    ctx.round = &round;
    ctx.messages = spec.messages;
    ctx.phase1_schedules = phase1_schedules;
    ctx.phase2_schedules = phase2_schedules;
    ctx.phase1_engine = &phase1_engine;
    ctx.phase2_engine = &phase2_engine;
    ctx.phase1_decoder = &phase1_decoder;
    ctx.distance_code = &codebook_->distance_code();
    ctx.batch = &batch;
    ctx.workspaces = &scratch.workspaces;
    ctx.states = &scratch.states;
    ctx.diagnostics = &scratch.diagnostics;
    ctx.round_index = round_index;
    ctx.n = n;
    ctx.decoy_count = codebook_->decoy_count();
    ctx.bitsliced = !round.codeword_slices.empty();
    // Resolved once per round: what params_.simd_kernel actually runs as on
    // this build/CPU (auto_best defers to NB_SIMD_KERNEL, then detection).
    ctx.kernel = simd::resolve_kernel(params_.simd_kernel);

    pool_->parallel_for(n, [&ctx](std::size_t worker, std::size_t node) {
        const DecodeContext& c = ctx;
        const Codebook::Round& rd = *c.round;
        const auto v = static_cast<NodeId>(node);
        if ((*c.states)[v] != NodeState::correct) {
            return;  // faulty nodes produce no output (their slot stays empty)
        }
        DecodeWorkspace& ws = (*c.workspaces)[worker];
        NodeDiagnostics& diag = (*c.diagnostics)[v];

        c.phase1_engine->hear_into(v, *c.phase1_schedules, ws.heard1);

        // Candidate entries for this decoder: node ids first, then the null
        // payload and the decoys (one list, built once per transport).
        const std::span<const std::uint32_t> entries = c.codebook->candidate_entries(v);
        const std::size_t node_candidates = c.codebook->node_candidate_count(v);

        // Phase 1 decode: which candidate inputs pass the Lemma 9 test. The
        // node's own input is known; the paper includes it in R_v (inclusive
        // neighborhood) but it carries no foreign message. Under all_nodes
        // the bitsliced kernel scores every candidate and decoy in one
        // transcript pass; two-hop dictionaries are small enough that the
        // per-candidate scalar kernel wins.
        ws.accepted_nodes.clear();
        ws.accepted_decoys.clear();
        if (c.bitsliced) {
            c.phase1_decoder->accept_all(ws.heard1, rd.codeword_slices, ws.slice_scratch,
                                         ws.accept_mask, c.kernel);
            for (std::size_t w = 0; w < ws.accept_mask.size(); ++w) {
                std::uint64_t bits = ws.accept_mask[w];
                while (bits != 0) {
                    const std::size_t cand =
                        w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
                    bits &= bits - 1;
                    if (cand < c.n) {
                        if (cand != v) {
                            ws.accepted_nodes.push_back(static_cast<NodeId>(cand));
                        }
                    } else {
                        ws.accepted_decoys.push_back(cand - c.n);
                    }
                }
            }
        } else {
            for (std::size_t i = 0; i < node_candidates; ++i) {
                const NodeId u = entries[i];
                if (u != v && c.phase1_decoder->accepts_codeword(ws.heard1, rd.codewords[u],
                                                                 c.kernel)) {
                    ws.accepted_nodes.push_back(u);
                }
            }
            for (std::size_t i = 0; i < c.decoy_count; ++i) {
                if (c.phase1_decoder->accepts_codeword(ws.heard1, rd.decoy_codewords[i],
                                                       c.kernel)) {
                    ws.accepted_decoys.push_back(i);
                }
            }
        }

        // Diagnostics: accepted vs the set of *correct* transmitting
        // neighbors (faulty neighbors never transmitted their codeword, so
        // accepting one counts as a false positive).
        std::size_t true_accepted = 0;
        for (const auto u : ws.accepted_nodes) {
            if (c.graph->has_edge(u, v) && (*c.states)[u] == NodeState::correct) {
                ++true_accepted;
            } else {
                ++diag.phase1_false_positives;
            }
        }
        diag.phase1_false_positives += ws.accepted_decoys.size();
        std::size_t correct_neighbors = 0;
        for (const auto u : c.graph->neighbors(v)) {
            correct_neighbors += (*c.states)[u] == NodeState::correct ? 1 : 0;
        }
        diag.phase1_false_negatives += correct_neighbors - true_accepted;

        // Phase 2 decode for every accepted foreign input, against the
        // round's cached dictionary encodings. The accepted sender is the
        // nearest-entry hint: when its encoding is within the unique-
        // decoding radius, the dictionary scan is skipped (exact; see
        // DistanceCode::nearest_entry).
        c.phase2_engine->hear_into(v, *c.phase2_schedules, ws.heard2);

        auto decode_entry_at = [&](const Bitstring& codeword,
                                   const std::vector<std::size_t>& positions,
                                   std::uint32_t hint_entry) {
            // The subsequence at the codeword's 1-positions: the vector
            // kernels gather it with the word-wise PEXT walk straight off
            // the packed codeword; the scalar kernel keeps the position-list
            // gather (faster than emulated PEXT). Identical bits either way
            // — positions ARE the codeword's 1-positions (property-tested).
            if (c.kernel == simd::Kernel::scalar) {
                ws.heard2.gather_into(positions, ws.gathered);
            } else {
                ws.heard2.gather_mask_into(codeword, ws.gathered, c.kernel);
            }
            // Full-dictionary sweeps (all_nodes above the bitslice
            // crossover) run the vectorized SoA scan; the sparse two-hop
            // entry lists keep the per-entry fold. Same hint shortcut, same
            // winner, bit-identical (see nearest_entry_soa).
            if (!rd.candidate_encoded_soa.empty()) {
                return c.distance_code->nearest_entry_soa(
                    ws.gathered, rd.candidate_messages, rd.candidate_encoded_soa, entries,
                    hint_entry, rd.decode_gaps, ws.distances, c.kernel);
            }
            return c.distance_code->nearest_entry(ws.gathered, rd.candidate_messages,
                                                  rd.candidate_encoded, entries, hint_entry,
                                                  rd.decode_gaps);
        };

        // Deliveries land as fixed-stride records in this worker's arena;
        // the run is contiguous because this worker decodes one node at a
        // time (see transport_batch.h).
        std::uint64_t run_start = 0;
        std::uint32_t run_count = 0;
        const std::size_t stride = c.batch->message_words();
        auto deliver_tail = [&](std::uint32_t entry) {
            const std::uint64_t offset = c.batch->push_record(worker);
            if (run_count == 0) {
                run_start = offset;
            }
            const std::vector<std::uint64_t>& words = rd.candidate_tails[entry].words();
            std::memcpy(c.batch->record_at(worker, offset), words.data(),
                        stride * sizeof(std::uint64_t));
            ++run_count;
        };

        for (const auto u : ws.accepted_nodes) {
            const std::uint32_t entry =
                decode_entry_at(rd.codewords[u], rd.one_positions[u], u);
            const Bitstring& decoded = rd.candidate_messages[entry];
            if (c.graph->has_edge(u, v) && (*c.states)[u] == NodeState::correct &&
                decoded != rd.payloads[u]) {
                ++diag.phase2_errors;
            }
            if (decoded.test(0)) {
                deliver_tail(entry);
            }
        }
        for (const auto i : ws.accepted_decoys) {
            const auto hint = static_cast<std::uint32_t>(c.n + 1 + i);
            const std::uint32_t entry =
                decode_entry_at(rd.decoy_codewords[i], rd.decoy_one_positions[i], hint);
            if (rd.candidate_messages[entry].test(0)) {
                deliver_tail(entry);
            }
        }
        c.batch->commit_node(c.round_index, v, worker, run_start, run_count, ws.sort_tmp);

        // Ground-truth delivery for the mismatch diagnostic: faulty
        // neighbors' messages are lost by definition. The expected messages
        // are the cached payload tails, compared word-by-word against the
        // arena records so the check allocates nothing.
        ws.expected.clear();
        for (const auto u : c.graph->neighbors(v)) {
            if ((*c.messages)[u].has_value() && (*c.states)[u] == NodeState::correct) {
                ws.expected.push_back(&rd.candidate_tails[u]);
            }
        }
        std::sort(ws.expected.begin(), ws.expected.end(),
                  [](const Bitstring* a, const Bitstring* b) { return message_less(*a, *b); });
        bool mismatch = ws.expected.size() != run_count;
        for (std::size_t i = 0; !mismatch && i < ws.expected.size(); ++i) {
            const std::span<const std::uint64_t> record =
                c.batch->delivered_words(c.round_index, v, i);
            const std::vector<std::uint64_t>& expect = ws.expected[i]->words();
            for (std::size_t w = 0; w < stride; ++w) {
                if (record[w] != expect[w]) {
                    mismatch = true;
                    break;
                }
            }
        }
        if (mismatch) {
            ++diag.delivery_mismatches;
        }
    });

    for (const auto& diag : scratch.diagnostics) {
        stats.phase1_false_negatives += diag.phase1_false_negatives;
        stats.phase1_false_positives += diag.phase1_false_positives;
        stats.phase2_errors += diag.phase2_errors;
        stats.delivery_mismatches += diag.delivery_mismatches;
    }
    stats.perfect = stats.delivery_mismatches == 0;
}

}  // namespace nb
