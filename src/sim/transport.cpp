#include "sim/transport.h"

#include <algorithm>
#include <bit>
#include <future>

#include "beep/batch_engine.h"
#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {

namespace {

enum class NodeState : unsigned char { correct, jammer, crashed };

/// Per-node diagnostic deltas, reduced into TransportRound in node order
/// after the parallel loop so totals are independent of thread schedule.
struct NodeDiagnostics {
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    std::size_t delivery_mismatches = 0;
};

std::vector<NodeState> build_node_states(std::size_t n, const FaultModel& faults) {
    std::vector<NodeState> state(n, NodeState::correct);
    for (const auto v : faults.jammers) {
        require(v < n, "BeepTransport: jammer id out of range");
        state[v] = NodeState::jammer;
    }
    for (const auto v : faults.crashed) {
        require(v < n, "BeepTransport: crashed id out of range");
        // Duplicate entries within one list are idempotent; only the
        // contradictory jammer+crashed combination is rejected.
        require(state[v] != NodeState::jammer, "BeepTransport: node cannot jam and crash");
        state[v] = NodeState::crashed;
    }
    return state;
}

}  // namespace

/// Reusable per-worker scratch: transcript/gather buffers, acceptance lists,
/// bitslice counters and ground-truth pointers. Allocated once per
/// simulate_rounds call and reused across every round of the batch, so the
/// node loop allocates nothing once warm.
struct BeepTransport::DecodeWorkspace {
    Bitstring heard1;
    Bitstring heard2;
    Bitstring gathered;
    std::vector<NodeId> accepted_nodes;
    std::vector<std::size_t> accepted_decoys;
    std::vector<std::uint64_t> accept_mask;
    BitsliceScratch slice_scratch;
    std::vector<const Bitstring*> expected;
};

TransportRound Transport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce) const {
    const RoundSpec spec{&messages, round_nonce, nullptr};
    return std::move(simulate_rounds({&spec, 1}).front());
}

BeepTransport::BeepTransport(const Graph& graph, SimulationParams params)
    : graph_(graph), params_(params) {
    params_.validate();
    if (params_.shared_codebook) {
        // The cached build owns its own graph copy (structurally equal to
        // graph_, enforced by the cache key), so eviction or this
        // transport's death never dangles anything.
        shared_codebook_ = CodebookCache::instance().acquire(graph_, params_);
        codebook_ = &shared_codebook_->codebook();
    } else {
        owned_codebook_ = std::make_unique<Codebook>(graph_, params_);
        codebook_ = owned_codebook_.get();
    }
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::worker_count_for(params_.threads, graph_.node_count()));
}

std::size_t BeepTransport::rounds_per_broadcast_round() const {
    return params_.rounds_per_broadcast_round(graph_.max_degree());
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce,
    const FaultModel& faults) const {
    const RoundSpec spec{&messages, round_nonce, &faults};
    return std::move(simulate_rounds({&spec, 1}).front());
}

std::vector<TransportRound> BeepTransport::simulate_rounds(
    std::span<const RoundSpec> specs) const {
    const std::size_t n = graph_.node_count();
    for (const auto& spec : specs) {
        require(spec.messages != nullptr, "BeepTransport::simulate_rounds: null messages");
        require(spec.messages->size() == n, "BeepTransport: one message slot per node");
        if (spec.faults != nullptr) {
            build_node_states(n, *spec.faults);  // fail fast on bad fault ids
        }
    }

    std::vector<TransportRound> results;
    results.reserve(specs.size());
    if (specs.empty()) {
        return results;
    }

    // Workspaces are per batch, not per round: the buffers inside reach
    // their steady-state sizes during the first round and are reused by
    // every later one.
    std::vector<DecodeWorkspace> workspaces(pool_->worker_count());

    // Pipeline: while round i is decoding on the pool, a builder task
    // derives round i+1's Codebook::Round (codewords, schedules, slices,
    // radii) for its nonce. Builds are pure functions of (messages, nonce),
    // so overlapping them with decoding cannot change any output. With a
    // single worker the pipeline would only add synchronization, so the
    // batch degenerates to build-then-decode per spec.
    const auto build = [this](const RoundSpec& spec) {
        return codebook_->round(*spec.messages, spec.nonce);
    };
    const bool pipelined = pool_->worker_count() > 1 && specs.size() > 1;
    std::shared_ptr<const Codebook::Round> current = build(specs.front());
    std::future<std::shared_ptr<const Codebook::Round>> next;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (pipelined && i + 1 < specs.size()) {
            next = std::async(std::launch::async, build, std::cref(specs[i + 1]));
        }
        results.push_back(decode_round(*current, specs[i], workspaces));
        if (i + 1 < specs.size()) {
            current = pipelined ? next.get() : build(specs[i + 1]);
        }
    }
    return results;
}

TransportRound BeepTransport::decode_round(const Codebook::Round& round, const RoundSpec& spec,
                                           std::vector<DecodeWorkspace>& workspaces) const {
    const std::size_t n = graph_.node_count();
    const std::vector<std::optional<Bitstring>>& messages = *spec.messages;
    static const FaultModel no_faults{};
    const FaultModel& faults = spec.faults != nullptr ? *spec.faults : no_faults;

    const std::vector<NodeState> state = build_node_states(n, faults);
    const std::size_t b = codebook_->beep_length();

    // Phase schedules: the cached fault-free ones (codewords and combined
    // codewords) unless faults force per-node overrides — jammers transmit
    // all-ones, crashed nodes all-zeros, in both phases. The decoding
    // dictionary stays the cached codewords: decoders have no fault
    // knowledge.
    const std::vector<Bitstring>* phase1_schedules = &round.codewords;
    const std::vector<Bitstring>* phase2_schedules = &round.combined_schedules;
    std::vector<Bitstring> faulty_phase1;
    std::vector<Bitstring> faulty_phase2;
    if (!faults.empty()) {
        faulty_phase1 = round.codewords;
        faulty_phase2 = round.combined_schedules;
        for (NodeId v = 0; v < n; ++v) {
            if (state[v] == NodeState::jammer) {
                faulty_phase1[v] = ~Bitstring(b);
                faulty_phase2[v] = ~Bitstring(b);
            } else if (state[v] == NodeState::crashed) {
                faulty_phase1[v] = Bitstring(b);
                faulty_phase2[v] = Bitstring(b);
            }
        }
        phase1_schedules = &faulty_phase1;
        phase2_schedules = &faulty_phase2;
    }

    // The physical channel: iid(params_.epsilon) by default, or whatever
    // ChannelModel the params carry. Decoder thresholds below keep using the
    // design epsilon regardless of the physical model.
    const BatchParams channel{params_.channel_model(), false};
    const BatchEngine phase1_engine(graph_, channel, round.rng.derive(0x70683161u));
    const BatchEngine phase2_engine(graph_, channel, round.rng.derive(0x70683262u));
    // Schedule sets are validated once per round here, not once per node
    // inside hear_into — that revalidation made decoding O(n^2) in require
    // checks.
    phase1_engine.check_schedules(*phase1_schedules);
    phase2_engine.check_schedules(*phase2_schedules);

    TransportRound result;
    result.beep_rounds = 2 * b;
    result.total_beeps =
        faults.empty() ? round.phase1_beeps + round.phase2_beeps
                       : BatchEngine::total_beeps(*phase1_schedules) +
                             BatchEngine::total_beeps(*phase2_schedules);
    result.delivered.resize(n);

    const Phase1Decoder phase1_decoder(codebook_->beep_code(), params_.epsilon);
    const DistanceCode& distance_code = codebook_->distance_code();
    const std::size_t decoy_count = codebook_->decoy_count();
    const bool bitsliced = !round.codeword_slices.empty();

    std::vector<NodeDiagnostics> diagnostics(n);

    pool_->parallel_for(n, [&](std::size_t worker, std::size_t node) {
        const auto v = static_cast<NodeId>(node);
        if (state[v] != NodeState::correct) {
            return;  // faulty nodes produce no output (delivered stays empty)
        }
        DecodeWorkspace& ws = workspaces[worker];
        NodeDiagnostics& diag = diagnostics[v];

        phase1_engine.hear_into(v, *phase1_schedules, ws.heard1);

        // Candidate entries for this decoder: node ids first, then the null
        // payload and the decoys (one list, built once per transport).
        const std::span<const std::uint32_t> entries = codebook_->candidate_entries(v);
        const std::size_t node_candidates = codebook_->node_candidate_count(v);

        // Phase 1 decode: which candidate inputs pass the Lemma 9 test. The
        // node's own input is known; the paper includes it in R_v (inclusive
        // neighborhood) but it carries no foreign message. Under all_nodes
        // the bitsliced kernel scores every candidate and decoy in one
        // transcript pass; two-hop dictionaries are small enough that the
        // per-candidate scalar kernel wins.
        ws.accepted_nodes.clear();
        ws.accepted_decoys.clear();
        if (bitsliced) {
            phase1_decoder.accept_all(ws.heard1, round.codeword_slices, ws.slice_scratch,
                                      ws.accept_mask);
            for (std::size_t w = 0; w < ws.accept_mask.size(); ++w) {
                std::uint64_t bits = ws.accept_mask[w];
                while (bits != 0) {
                    const std::size_t c =
                        w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
                    bits &= bits - 1;
                    if (c < n) {
                        if (c != v) {
                            ws.accepted_nodes.push_back(static_cast<NodeId>(c));
                        }
                    } else {
                        ws.accepted_decoys.push_back(c - n);
                    }
                }
            }
        } else {
            for (std::size_t i = 0; i < node_candidates; ++i) {
                const NodeId u = entries[i];
                if (u != v && phase1_decoder.accepts_codeword(ws.heard1, round.codewords[u])) {
                    ws.accepted_nodes.push_back(u);
                }
            }
            for (std::size_t i = 0; i < decoy_count; ++i) {
                if (phase1_decoder.accepts_codeword(ws.heard1, round.decoy_codewords[i])) {
                    ws.accepted_decoys.push_back(i);
                }
            }
        }

        // Diagnostics: accepted vs the set of *correct* transmitting
        // neighbors (faulty neighbors never transmitted their codeword, so
        // accepting one counts as a false positive).
        std::size_t true_accepted = 0;
        for (const auto u : ws.accepted_nodes) {
            if (graph_.has_edge(u, v) && state[u] == NodeState::correct) {
                ++true_accepted;
            } else {
                ++diag.phase1_false_positives;
            }
        }
        diag.phase1_false_positives += ws.accepted_decoys.size();
        std::size_t correct_neighbors = 0;
        for (const auto u : graph_.neighbors(v)) {
            correct_neighbors += state[u] == NodeState::correct ? 1 : 0;
        }
        diag.phase1_false_negatives += correct_neighbors - true_accepted;

        // Phase 2 decode for every accepted foreign input, against the
        // round's cached dictionary encodings. The accepted sender is the
        // nearest-entry hint: when its encoding is within the unique-
        // decoding radius, the dictionary scan is skipped (exact; see
        // DistanceCode::nearest_entry).
        phase2_engine.hear_into(v, *phase2_schedules, ws.heard2);

        auto decode_entry_at = [&](const std::vector<std::size_t>& positions,
                                   std::uint32_t hint_entry) {
            ws.heard2.gather_into(positions, ws.gathered);
            return distance_code.nearest_entry(ws.gathered, round.candidate_messages,
                                               round.candidate_encoded, entries, hint_entry,
                                               round.decode_gaps);
        };

        for (const auto u : ws.accepted_nodes) {
            const std::uint32_t entry = decode_entry_at(round.one_positions[u], u);
            const Bitstring& decoded = round.candidate_messages[entry];
            if (graph_.has_edge(u, v) && state[u] == NodeState::correct &&
                decoded != round.payloads[u]) {
                ++diag.phase2_errors;
            }
            if (decoded.test(0)) {
                result.delivered[v].push_back(round.candidate_tails[entry]);
            }
        }
        for (const auto i : ws.accepted_decoys) {
            const auto hint = static_cast<std::uint32_t>(n + 1 + i);
            const std::uint32_t entry = decode_entry_at(round.decoy_one_positions[i], hint);
            if (round.candidate_messages[entry].test(0)) {
                result.delivered[v].push_back(round.candidate_tails[entry]);
            }
        }
        sort_messages(result.delivered[v]);

        // Ground-truth delivery for the mismatch diagnostic: faulty
        // neighbors' messages are lost by definition. The expected messages
        // are the cached payload tails, compared through pointers so the
        // check allocates nothing.
        ws.expected.clear();
        for (const auto u : graph_.neighbors(v)) {
            if (messages[u].has_value() && state[u] == NodeState::correct) {
                ws.expected.push_back(&round.candidate_tails[u]);
            }
        }
        std::sort(ws.expected.begin(), ws.expected.end(),
                  [](const Bitstring* a, const Bitstring* b) { return message_less(*a, *b); });
        bool mismatch = ws.expected.size() != result.delivered[v].size();
        for (std::size_t i = 0; !mismatch && i < ws.expected.size(); ++i) {
            mismatch = *ws.expected[i] != result.delivered[v][i];
        }
        if (mismatch) {
            ++diag.delivery_mismatches;
        }
    });

    for (const auto& diag : diagnostics) {
        result.phase1_false_negatives += diag.phase1_false_negatives;
        result.phase1_false_positives += diag.phase1_false_positives;
        result.phase2_errors += diag.phase2_errors;
        result.delivery_mismatches += diag.delivery_mismatches;
    }
    result.perfect = result.delivery_mismatches == 0;
    return result;
}

}  // namespace nb
