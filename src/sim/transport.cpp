#include "sim/transport.h"

#include <algorithm>

#include "beep/batch_engine.h"
#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {

namespace {

/// Inverse of the codebook's payload packing for a decoded payload with the
/// presence bit set: drop bit 0, shift the message bits down by one.
Bitstring extract_message(const Bitstring& payload) {
    Bitstring message(payload.size() - 1);
    for (std::size_t i = 1; i < payload.size(); ++i) {
        if (payload.test(i)) {
            message.set(i - 1);
        }
    }
    return message;
}

enum class NodeState : unsigned char { correct, jammer, crashed };

/// Per-node diagnostic deltas, reduced into TransportRound in node order
/// after the parallel loop so totals are independent of thread schedule.
struct NodeDiagnostics {
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    std::size_t delivery_mismatches = 0;
};

/// Reusable per-worker scratch: transcript/gather buffers and acceptance
/// lists, so the node loop allocates nothing once warm.
struct DecodeWorkspace {
    Bitstring heard1;
    Bitstring heard2;
    Bitstring gathered;
    std::vector<NodeId> accepted_nodes;
    std::vector<std::size_t> accepted_decoys;
};

}  // namespace

BeepTransport::BeepTransport(const Graph& graph, SimulationParams params)
    : graph_(graph), params_(params) {
    params_.validate();
    codebook_ = std::make_unique<Codebook>(graph_, params_);
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::worker_count_for(params_.threads, graph_.node_count()));
}

std::size_t BeepTransport::rounds_per_broadcast_round() const {
    return params_.rounds_per_broadcast_round(graph_.max_degree());
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce) const {
    return simulate_round(messages, round_nonce, FaultModel{});
}

TransportRound BeepTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce,
    const FaultModel& faults) const {
    const std::size_t n = graph_.node_count();
    require(messages.size() == n, "BeepTransport::simulate_round: one message slot per node");

    std::vector<NodeState> state(n, NodeState::correct);
    for (const auto v : faults.jammers) {
        require(v < n, "BeepTransport: jammer id out of range");
        state[v] = NodeState::jammer;
    }
    for (const auto v : faults.crashed) {
        require(v < n, "BeepTransport: crashed id out of range");
        require(state[v] == NodeState::correct, "BeepTransport: node cannot jam and crash");
        state[v] = NodeState::crashed;
    }

    const std::size_t b = codebook_->beep_length();
    const std::shared_ptr<const Codebook::Round> round = codebook_->round(messages, round_nonce);

    // Phase schedules: the cached fault-free ones (codewords and combined
    // codewords) unless faults force per-node overrides — jammers transmit
    // all-ones, crashed nodes all-zeros, in both phases. The decoding
    // dictionary stays the cached codewords: decoders have no fault
    // knowledge.
    const std::vector<Bitstring>* phase1_schedules = &round->codewords;
    const std::vector<Bitstring>* phase2_schedules = &round->combined_schedules;
    std::vector<Bitstring> faulty_phase1;
    std::vector<Bitstring> faulty_phase2;
    if (!faults.empty()) {
        faulty_phase1 = round->codewords;
        faulty_phase2 = round->combined_schedules;
        for (NodeId v = 0; v < n; ++v) {
            if (state[v] == NodeState::jammer) {
                faulty_phase1[v] = ~Bitstring(b);
                faulty_phase2[v] = ~Bitstring(b);
            } else if (state[v] == NodeState::crashed) {
                faulty_phase1[v] = Bitstring(b);
                faulty_phase2[v] = Bitstring(b);
            }
        }
        phase1_schedules = &faulty_phase1;
        phase2_schedules = &faulty_phase2;
    }

    const BatchParams channel{ChannelParams{params_.epsilon, true}, false};
    const BatchEngine phase1_engine(graph_, channel, round->rng.derive(0x70683161u));
    const BatchEngine phase2_engine(graph_, channel, round->rng.derive(0x70683262u));

    TransportRound result;
    result.beep_rounds = 2 * b;
    result.total_beeps =
        faults.empty() ? round->phase1_beeps + round->phase2_beeps
                       : BatchEngine::total_beeps(*phase1_schedules) +
                             BatchEngine::total_beeps(*phase2_schedules);
    result.delivered.resize(n);

    const Phase1Decoder phase1_decoder(codebook_->beep_code(), params_.epsilon);
    const DistanceCode& distance_code = codebook_->distance_code();
    const std::size_t decoy_count = codebook_->decoy_count();

    std::vector<NodeDiagnostics> diagnostics(n);
    std::vector<DecodeWorkspace> workspaces(pool_->worker_count());

    pool_->parallel_for(n, [&](std::size_t worker, std::size_t node) {
        const auto v = static_cast<NodeId>(node);
        if (state[v] != NodeState::correct) {
            return;  // faulty nodes produce no output (delivered stays empty)
        }
        DecodeWorkspace& ws = workspaces[worker];
        NodeDiagnostics& diag = diagnostics[v];

        phase1_engine.hear_into(v, *phase1_schedules, ws.heard1);

        // Candidate entries for this decoder: node ids first, then the null
        // payload and the decoys (one list, built once per transport).
        const std::span<const std::uint32_t> entries = codebook_->candidate_entries(v);
        const std::size_t node_candidates = codebook_->node_candidate_count(v);

        // Phase 1 decode: which candidate inputs pass the Lemma 9 test. The
        // node's own input is known; the paper includes it in R_v (inclusive
        // neighborhood) but it carries no foreign message.
        ws.accepted_nodes.clear();
        for (std::size_t i = 0; i < node_candidates; ++i) {
            const NodeId u = entries[i];
            if (u != v && phase1_decoder.accepts_codeword(ws.heard1, round->codewords[u])) {
                ws.accepted_nodes.push_back(u);
            }
        }
        ws.accepted_decoys.clear();
        for (std::size_t i = 0; i < decoy_count; ++i) {
            if (phase1_decoder.accepts_codeword(ws.heard1, round->decoy_codewords[i])) {
                ws.accepted_decoys.push_back(i);
            }
        }

        // Diagnostics: accepted vs the set of *correct* transmitting
        // neighbors (faulty neighbors never transmitted their codeword, so
        // accepting one counts as a false positive).
        std::size_t true_accepted = 0;
        for (const auto u : ws.accepted_nodes) {
            if (graph_.has_edge(u, v) && state[u] == NodeState::correct) {
                ++true_accepted;
            } else {
                ++diag.phase1_false_positives;
            }
        }
        diag.phase1_false_positives += ws.accepted_decoys.size();
        std::size_t correct_neighbors = 0;
        for (const auto u : graph_.neighbors(v)) {
            correct_neighbors += state[u] == NodeState::correct ? 1 : 0;
        }
        diag.phase1_false_negatives += correct_neighbors - true_accepted;

        // Phase 2 decode for every accepted foreign input, against the
        // round's cached dictionary encodings.
        phase2_engine.hear_into(v, *phase2_schedules, ws.heard2);

        auto decode_at = [&](const std::vector<std::size_t>& positions) {
            ws.heard2.gather_into(positions, ws.gathered);
            return distance_code.decode_cached(ws.gathered, round->candidate_messages,
                                               round->candidate_encoded, entries);
        };

        for (const auto u : ws.accepted_nodes) {
            const auto decoded = decode_at(round->one_positions[u]);
            ensure(decoded.has_value(), "BeepTransport: empty phase-2 dictionary");
            if (graph_.has_edge(u, v) && state[u] == NodeState::correct &&
                decoded->message != round->payloads[u]) {
                ++diag.phase2_errors;
            }
            if (decoded->message.test(0)) {
                result.delivered[v].push_back(extract_message(decoded->message));
            }
        }
        for (const auto i : ws.accepted_decoys) {
            const auto decoded = decode_at(round->decoy_one_positions[i]);
            ensure(decoded.has_value(), "BeepTransport: empty phase-2 dictionary");
            if (decoded->message.test(0)) {
                result.delivered[v].push_back(extract_message(decoded->message));
            }
        }
        sort_messages(result.delivered[v]);

        // Ground-truth delivery for the mismatch diagnostic: faulty
        // neighbors' messages are lost by definition.
        std::vector<Bitstring> expected;
        for (const auto u : graph_.neighbors(v)) {
            if (messages[u].has_value() && state[u] == NodeState::correct) {
                expected.push_back(extract_message(round->payloads[u]));
            }
        }
        sort_messages(expected);
        if (expected != result.delivered[v]) {
            ++diag.delivery_mismatches;
        }
    });

    for (const auto& diag : diagnostics) {
        result.phase1_false_negatives += diag.phase1_false_negatives;
        result.phase1_false_positives += diag.phase1_false_positives;
        result.phase2_errors += diag.phase2_errors;
        result.delivery_mismatches += diag.delivery_mismatches;
    }
    result.perfect = result.delivery_mismatches == 0;
    return result;
}

}  // namespace nb
