#include "sim/decode_core.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {
namespace transport_detail {

void build_node_states_into(std::vector<NodeState>& state, std::size_t n,
                            const FaultModel& faults) {
    state.assign(n, NodeState::correct);
    for (const auto v : faults.jammers) {
        require(v < n, "BeepTransport: jammer id out of range");
        state[v] = NodeState::jammer;
    }
    for (const auto v : faults.crashed) {
        require(v < n, "BeepTransport: crashed id out of range");
        // Duplicate entries within one list are idempotent; only the
        // contradictory jammer+crashed combination is rejected.
        require(state[v] != NodeState::jammer, "BeepTransport: node cannot jam and crash");
        state[v] = NodeState::crashed;
    }
}

void decode_node(const DecodeContext& ctx, std::size_t worker, NodeId v) {
    const DecodeContext& c = ctx;
    const Codebook::Round& rd = *c.round;
    if ((*c.states)[v] != NodeState::correct) {
        return;  // faulty nodes produce no output (their slot stays empty)
    }
    // The batch's slot table is indexed by global id; under sharding v is a
    // local closure index and gv its global identity.
    const NodeId gv = c.local_to_global != nullptr ? c.local_to_global[v] : v;
    DecodeWorkspace& ws = (*c.workspaces)[worker];
    NodeDiagnostics& diag = (*c.diagnostics)[v];

    c.phase1_engine->hear_into(v, *c.phase1_schedules, ws.heard1);

    // Candidate entries for this decoder: node ids first, then the null
    // payload and the decoys (one list, built once per transport).
    const std::span<const std::uint32_t> entries = c.codebook->candidate_entries(v);
    const std::size_t node_candidates = c.codebook->node_candidate_count(v);

    // Phase 1 decode: which candidate inputs pass the Lemma 9 test. The
    // node's own input is known; the paper includes it in R_v (inclusive
    // neighborhood) but it carries no foreign message. Under all_nodes
    // the bitsliced kernel scores every candidate and decoy in one
    // transcript pass; two-hop dictionaries are small enough that the
    // per-candidate scalar kernel wins.
    ws.accepted_nodes.clear();
    ws.accepted_decoys.clear();
    if (c.bitsliced) {
        c.phase1_decoder->accept_all(ws.heard1, rd.codeword_slices, ws.slice_scratch,
                                     ws.accept_mask, c.kernel);
        for (std::size_t w = 0; w < ws.accept_mask.size(); ++w) {
            std::uint64_t bits = ws.accept_mask[w];
            while (bits != 0) {
                const std::size_t cand =
                    w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                if (cand < c.n) {
                    if (cand != v) {
                        ws.accepted_nodes.push_back(static_cast<NodeId>(cand));
                    }
                } else {
                    ws.accepted_decoys.push_back(cand - c.n);
                }
            }
        }
    } else {
        for (std::size_t i = 0; i < node_candidates; ++i) {
            const NodeId u = entries[i];
            if (u != v && c.phase1_decoder->accepts_codeword(ws.heard1, (*c.codewords)[u],
                                                             c.kernel)) {
                ws.accepted_nodes.push_back(u);
            }
        }
        for (std::size_t i = 0; i < c.decoy_count; ++i) {
            if (c.phase1_decoder->accepts_codeword(ws.heard1, rd.decoy_codewords[i],
                                                   c.kernel)) {
                ws.accepted_decoys.push_back(i);
            }
        }
    }

    // Diagnostics: accepted vs the set of *correct* transmitting
    // neighbors (faulty neighbors never transmitted their codeword, so
    // accepting one counts as a false positive).
    std::size_t true_accepted = 0;
    for (const auto u : ws.accepted_nodes) {
        if (c.graph->has_edge(u, v) && (*c.states)[u] == NodeState::correct) {
            ++true_accepted;
        } else {
            ++diag.phase1_false_positives;
        }
    }
    diag.phase1_false_positives += ws.accepted_decoys.size();
    std::size_t correct_neighbors = 0;
    for (const auto u : c.graph->neighbors(v)) {
        correct_neighbors += (*c.states)[u] == NodeState::correct ? 1 : 0;
    }
    diag.phase1_false_negatives += correct_neighbors - true_accepted;

    // Phase 2 decode for every accepted foreign input, against the
    // round's cached dictionary encodings. The accepted sender is the
    // nearest-entry hint: when its encoding is within the unique-
    // decoding radius, the dictionary scan is skipped (exact; see
    // DistanceCode::nearest_entry).
    c.phase2_engine->hear_into(v, *c.phase2_schedules, ws.heard2);

    auto decode_entry_at = [&](const Bitstring& codeword,
                               const std::vector<std::size_t>& positions,
                               std::uint32_t hint_entry) {
        // The subsequence at the codeword's 1-positions: the vector
        // kernels gather it with the word-wise PEXT walk straight off
        // the packed codeword; the scalar kernel keeps the position-list
        // gather (faster than emulated PEXT). Identical bits either way
        // — positions ARE the codeword's 1-positions (property-tested).
        if (c.kernel == simd::Kernel::scalar) {
            ws.heard2.gather_into(positions, ws.gathered);
        } else {
            ws.heard2.gather_mask_into(codeword, ws.gathered, c.kernel);
        }
        // Full-dictionary sweeps (all_nodes above the bitslice
        // crossover) run the vectorized SoA scan; the sparse two-hop
        // entry lists keep the per-entry fold. Same hint shortcut, same
        // winner, bit-identical (see nearest_entry_soa).
        if (!rd.candidate_encoded_soa.empty()) {
            return c.distance_code->nearest_entry_soa(
                ws.gathered, rd.candidate_messages, rd.candidate_encoded_soa, entries,
                hint_entry, rd.decode_gaps, ws.distances, c.kernel);
        }
        return c.distance_code->nearest_entry(ws.gathered, rd.candidate_messages,
                                              rd.candidate_encoded, entries, hint_entry,
                                              rd.decode_gaps);
    };

    // Deliveries land as fixed-stride records in this worker's arena;
    // the run is contiguous because this worker decodes one node at a
    // time (see transport_batch.h).
    std::uint64_t run_start = 0;
    std::uint32_t run_count = 0;
    const std::size_t stride = c.batch->message_words();
    auto deliver_tail = [&](std::uint32_t entry) {
        const std::uint64_t offset = c.batch->push_record(worker);
        if (run_count == 0) {
            run_start = offset;
        }
        const std::vector<std::uint64_t>& words = rd.candidate_tails[entry].words();
        std::memcpy(c.batch->record_at(worker, offset), words.data(),
                    stride * sizeof(std::uint64_t));
        ++run_count;
    };

    for (const auto u : ws.accepted_nodes) {
        const std::uint32_t entry =
            decode_entry_at((*c.codewords)[u], (*c.one_positions)[u], u);
        const Bitstring& decoded = rd.candidate_messages[entry];
        if (c.graph->has_edge(u, v) && (*c.states)[u] == NodeState::correct &&
            decoded != rd.payloads[u]) {
            ++diag.phase2_errors;
        }
        if (decoded.test(0)) {
            deliver_tail(entry);
        }
    }
    for (const auto i : ws.accepted_decoys) {
        const auto hint = static_cast<std::uint32_t>(c.n + 1 + i);
        const std::uint32_t entry =
            decode_entry_at(rd.decoy_codewords[i], rd.decoy_one_positions[i], hint);
        if (rd.candidate_messages[entry].test(0)) {
            deliver_tail(entry);
        }
    }
    c.batch->commit_node(c.round_index, gv, worker, run_start, run_count, ws.sort_tmp);

    // Ground-truth delivery for the mismatch diagnostic: faulty
    // neighbors' messages are lost by definition. The expected messages
    // are the cached payload tails, compared word-by-word against the
    // arena records so the check allocates nothing.
    ws.expected.clear();
    for (const auto u : c.graph->neighbors(v)) {
        if ((*c.messages)[u].has_value() && (*c.states)[u] == NodeState::correct) {
            ws.expected.push_back(&rd.candidate_tails[u]);
        }
    }
    std::sort(ws.expected.begin(), ws.expected.end(),
              [](const Bitstring* a, const Bitstring* b) { return message_less(*a, *b); });
    bool mismatch = ws.expected.size() != run_count;
    for (std::size_t i = 0; !mismatch && i < ws.expected.size(); ++i) {
        const std::span<const std::uint64_t> record =
            c.batch->delivered_words(c.round_index, gv, i);
        const std::vector<std::uint64_t>& expect = ws.expected[i]->words();
        for (std::size_t w = 0; w < stride; ++w) {
            if (record[w] != expect[w]) {
                mismatch = true;
                break;
            }
        }
    }
    if (mismatch) {
        ++diag.delivery_mismatches;
    }
}

}  // namespace transport_detail
}  // namespace nb
