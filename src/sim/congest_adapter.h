// Corollary 12's reduction: CONGEST on top of Broadcast CONGEST.
//
// A CONGEST round is simulated by Delta Broadcast CONGEST slots: in slot s,
// each node broadcasts <target, sender, payload> for its s-th neighbor;
// receivers keep the messages addressed to them. One initial round
// broadcasts node ids so every node learns its neighbors' ids.
//
// The reduction is itself a Broadcast CONGEST algorithm (this adapter), so
// it runs unchanged on the native engine — giving Lemma 15's O(Delta)
// upper bound — and on BroadcastCongestOverBeeps — giving Corollary 12's
// O(Delta^2 log n)-overhead CONGEST simulation in the noisy beeping model.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "congest/native_engine.h"
#include "graph/graph.h"
#include "sim/broadcast_congest_sim.h"

namespace nb {

/// Per-node adapter wrapping a CongestAlgorithm as a BroadcastCongestAlgorithm.
class CongestViaBroadcastAdapter final : public BroadcastCongestAlgorithm {
public:
    /// `inner_message_bits` is the CONGEST payload budget B. The adapter's
    /// own broadcasts need 2 + 2*id_bits + 1 + B bits (see layout below).
    CongestViaBroadcastAdapter(std::unique_ptr<CongestAlgorithm> inner,
                               std::size_t inner_message_bits);

    void initialize(NodeId self, const CongestInfo& info, Rng& rng) override;
    std::optional<Bitstring> broadcast(std::size_t round, Rng& rng) override;
    void receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) override;
    bool finished() const override;

    /// Broadcast-message width the adapter requires for node-id space
    /// `node_count` and inner budget B.
    static std::size_t required_message_bits(std::size_t node_count,
                                             std::size_t inner_message_bits);

    /// CONGEST super-rounds fully delivered so far.
    std::size_t congest_rounds_completed() const noexcept { return superrounds_done_; }

    CongestAlgorithm& inner() noexcept { return *inner_; }

private:
    std::size_t slots_per_superround() const noexcept;

    std::unique_ptr<CongestAlgorithm> inner_;
    std::size_t inner_message_bits_;

    NodeId self_ = 0;
    CongestInfo info_{};
    std::size_t id_bits_ = 0;

    std::vector<NodeId> neighbor_ids_;            ///< learned in round 0, sorted
    std::vector<std::optional<Bitstring>> outgoing_;  ///< this superround's sends
    std::vector<AddressedMessage> inbox_;         ///< accumulating deliveries
    std::size_t superrounds_done_ = 0;
    bool inner_done_ = false;
};

/// Convenience runner: simulate a CONGEST algorithm in the noisy beeping
/// model (Corollary 12) by stacking the adapter on BroadcastCongestOverBeeps.
struct CongestOverBeepsResult {
    SimulatedRunStats broadcast_stats;      ///< stats of the underlying BC run
    std::size_t congest_rounds = 0;         ///< CONGEST super-rounds completed

    /// The adapter nodes, returned so callers can inspect the inner
    /// CongestAlgorithm state after the run (see inner_algorithm()).
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> adapters;

    /// The wrapped CongestAlgorithm of node v.
    CongestAlgorithm& inner_algorithm(std::size_t v) const;
};

CongestOverBeepsResult run_congest_over_beeps(
    const Graph& graph, std::vector<std::unique_ptr<CongestAlgorithm>> nodes,
    std::size_t inner_message_bits, SimulationParams sim_params, std::uint64_t algorithm_seed,
    std::size_t max_congest_rounds);

/// Lemma 15 route: run a CONGEST algorithm over the *native* Broadcast
/// CONGEST engine via the same adapter (O(Delta) BC rounds per CONGEST
/// round). Returns (BC stats, CONGEST super-rounds completed).
struct CongestViaBroadcastResult {
    CongestRunStats broadcast_stats;
    std::size_t congest_rounds = 0;

    /// The adapter nodes (see CongestOverBeepsResult::adapters).
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> adapters;

    /// The wrapped CongestAlgorithm of node v.
    CongestAlgorithm& inner_algorithm(std::size_t v) const;
};

CongestViaBroadcastResult run_congest_via_broadcast(
    const Graph& graph, std::vector<std::unique_ptr<CongestAlgorithm>> nodes,
    std::size_t inner_message_bits, std::uint64_t algorithm_seed,
    std::size_t max_congest_rounds);

}  // namespace nb
