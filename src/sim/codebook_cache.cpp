#include "sim/codebook_cache.h"

#include <algorithm>

#include "common/rng.h"
#include "graph/algorithms.h"

namespace nb {

namespace {

/// Exact adjacency equality — the collision-safety check behind every
/// digest match.
bool graphs_equal(const Graph& a, const Graph& b) {
    if (a.node_count() != b.node_count()) {
        return false;
    }
    for (NodeId v = 0; v < a.node_count(); ++v) {
        const auto na = a.neighbors(v);
        const auto nb_ = b.neighbors(v);
        if (!std::equal(na.begin(), na.end(), nb_.begin(), nb_.end())) {
            return false;
        }
    }
    return true;
}

}  // namespace

std::uint64_t CodebookCache::graph_digest(const Graph& graph) {
    std::uint64_t h = 0x67726170685f6469ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        const auto neighbors = graph.neighbors(v);
        mix(neighbors.size());
        for (const auto u : neighbors) {
            mix(u);
        }
    }
    return h;
}

SimulationParams CodebookCache::canonical_params(const SimulationParams& params) {
    SimulationParams canonical = params;
    canonical.epsilon = 0.0;  // decoder thresholds live in the transport, not the codebook
    canonical.channel.reset();
    canonical.threads = 1;
    return canonical;
}

std::uint64_t CodebookCache::Key::hash() const {
    std::uint64_t h = 0x636f6465626f6f6bULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(graph_digest);
    mix(node_count);
    mix(message_bits);
    mix(c_eps);
    mix(code_seed);
    mix(transport_seed);
    mix(decoy_count);
    mix(bitslice_min_candidates);
    mix(static_cast<std::uint64_t>(dictionary));
    return h;
}

CodebookCache::Key CodebookCache::make_key(const Graph& graph,
                                           const SimulationParams& params) {
    Key key;
    key.graph_digest = graph_digest(graph);
    key.node_count = graph.node_count();
    key.message_bits = params.message_bits;
    key.c_eps = params.c_eps;
    key.code_seed = params.code_seed;
    key.transport_seed = params.transport_seed;
    key.decoy_count = params.decoy_count;
    key.bitslice_min_candidates = params.bitslice_min_candidates;
    key.dictionary = params.dictionary;
    return key;
}

CodebookCache::CodebookCache(std::size_t shard_count, std::size_t shard_capacity)
    : shard_capacity_(std::max<std::size_t>(1, shard_capacity)),
      coloring_capacity_(std::max<std::size_t>(1, shard_count * shard_capacity)) {
    shards_.reserve(std::max<std::size_t>(1, shard_count));
    for (std::size_t i = 0; i < std::max<std::size_t>(1, shard_count); ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

CodebookCache& CodebookCache::instance() {
    static CodebookCache cache;
    return cache;
}

std::shared_ptr<const SharedCodebook> CodebookCache::acquire(
    const Graph& graph, const SimulationParams& params) {
    const Key key = make_key(graph, params);
    Shard& shard = *shards_[key.hash() % shards_.size()];

    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
        if (it->key == key && graphs_equal(it->codebook->graph(), graph)) {
            ++shard.hits;
            shard.lru.splice(shard.lru.begin(), shard.lru, it);
            return shard.lru.front().codebook;
        }
    }

    // Miss: build while holding the shard lock, so a concurrent lookup of
    // the same key waits here and then hits — exactly-once construction.
    ++shard.builds;
    auto built = std::make_shared<const SharedCodebook>(graph, canonical_params(params));
    shard.lru.push_front(Entry{key, built});
    while (shard.lru.size() > shard_capacity_) {
        shard.lru.pop_back();
        ++shard.evictions;
    }
    return built;
}

std::vector<std::size_t> CodebookCache::coloring(const Graph& graph) {
    const std::uint64_t digest = graph_digest(graph);

    std::lock_guard<std::mutex> lock(coloring_mutex_);
    for (auto it = colorings_.begin(); it != colorings_.end(); ++it) {
        if (it->digest == digest && graphs_equal(it->graph, graph)) {
            ++coloring_hits_;
            colorings_.splice(colorings_.begin(), colorings_, it);
            return colorings_.front().colors;
        }
    }

    ++coloring_builds_;
    ColoringEntry entry;
    entry.digest = digest;
    entry.graph = graph;
    entry.colors = greedy_distance2_coloring(graph);
    colorings_.push_front(std::move(entry));
    while (colorings_.size() > coloring_capacity_) {
        colorings_.pop_back();
        ++coloring_evictions_;
    }
    return colorings_.front().colors;
}

CodebookCache::Stats CodebookCache::stats() const {
    Stats total;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->hits;
        total.builds += shard->builds;
        total.evictions += shard->evictions;
    }
    std::lock_guard<std::mutex> lock(coloring_mutex_);
    total.coloring_hits = coloring_hits_;
    total.coloring_builds = coloring_builds_;
    total.coloring_evictions = coloring_evictions_;
    return total;
}

void CodebookCache::clear() {
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->hits = 0;
        shard->builds = 0;
        shard->evictions = 0;
    }
    std::lock_guard<std::mutex> lock(coloring_mutex_);
    colorings_.clear();
    coloring_hits_ = 0;
    coloring_builds_ = 0;
    coloring_evictions_ = 0;
}

}  // namespace nb
