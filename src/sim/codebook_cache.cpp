#include "sim/codebook_cache.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "sim/codebook_io.h"

namespace nb {

namespace {

// Fired after a successful miss-build, before the entry joins the LRU —
// models an insert that fails once the expensive work is already done (the
// built codebook must be released cleanly; ASan pins that).
NB_FAILPOINT_DEFINE(fp_cache_insert, "cache.insert");
// Fired before each LRU eviction (count- or byte-pressure).
NB_FAILPOINT_DEFINE(fp_cache_evict, "cache.evict");

std::string key_file_name(std::uint64_t key_hash) {
    char name[32];
    std::snprintf(name, sizeof name, "cb-%016llx.nbc",
                  static_cast<unsigned long long>(key_hash));
    return name;
}

}  // namespace

std::uint64_t CodebookCache::graph_digest(const Graph& graph) {
    std::uint64_t h = 0x67726170685f6469ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        const auto neighbors = graph.neighbors(v);
        mix(neighbors.size());
        for (const auto u : neighbors) {
            mix(u);
        }
    }
    return h;
}

std::uint64_t CodebookCache::graph_digest2(const Graph& graph) {
    // Independent seed and a different mixing schedule (per-node degree
    // salt, edge endpoints folded with their positions) so no single-digest
    // collision class survives both digests.
    std::uint64_t h = 0x6e625f6772646732ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ mix64(value)); };
    mix(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        const auto neighbors = graph.neighbors(v);
        mix((static_cast<std::uint64_t>(v) << 32) | neighbors.size());
        std::uint64_t i = 0;
        for (const auto u : neighbors) {
            mix(u + (++i << 40));
        }
    }
    return h;
}

SimulationParams CodebookCache::canonical_params(const SimulationParams& params) {
    SimulationParams canonical = params;
    canonical.epsilon = 0.0;  // decoder thresholds live in the transport, not the codebook
    canonical.channel.reset();
    canonical.threads = 1;
    return canonical;
}

std::uint64_t CodebookCache::Key::hash() const {
    std::uint64_t h = 0x636f6465626f6f6bULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(graph_digest);
    mix(graph_digest2);
    mix(shard_digest);
    mix(node_count);
    mix(message_bits);
    mix(c_eps);
    mix(code_seed);
    mix(transport_seed);
    mix(decoy_count);
    mix(bitslice_min_candidates);
    mix(static_cast<std::uint64_t>(dictionary));
    return h;
}

std::uint64_t CodebookCache::key_digest(const Graph& graph, const SimulationParams& params) {
    return make_key(graph, params).hash();
}

CodebookCache::Key CodebookCache::make_key(const Graph& graph,
                                           const SimulationParams& params,
                                           std::uint64_t shard_digest) {
    Key key;
    key.graph_digest = graph_digest(graph);
    key.graph_digest2 = graph_digest2(graph);
    key.shard_digest = shard_digest;
    key.node_count = graph.node_count();
    key.message_bits = params.message_bits;
    key.c_eps = params.c_eps;
    key.code_seed = params.code_seed;
    key.transport_seed = params.transport_seed;
    key.decoy_count = params.decoy_count;
    key.bitslice_min_candidates = params.bitslice_min_candidates;
    key.dictionary = params.dictionary;
    return key;
}

std::size_t SharedCodebook::memory_bytes() const {
    std::size_t bytes = (graph_.node_count() + 1) * sizeof(std::size_t);  // offsets
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
        bytes += graph_.neighbors(v).size() * sizeof(NodeId);
    }
    return bytes + codebook_.memory_bytes();
}

CodebookCache::CodebookCache(std::size_t shard_count, std::size_t shard_capacity,
                             std::size_t max_bytes)
    : shard_capacity_(std::max<std::size_t>(1, shard_capacity)),
      shard_byte_cap_(max_bytes / std::max<std::size_t>(1, shard_count)),
      coloring_capacity_(std::max<std::size_t>(1, shard_count * shard_capacity)) {
    shards_.reserve(std::max<std::size_t>(1, shard_count));
    for (std::size_t i = 0; i < std::max<std::size_t>(1, shard_count); ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

CodebookCache& CodebookCache::instance() {
    static CodebookCache cache(8, 8, [] {
        if (const char* env = std::getenv("NB_CACHE_BYTES")) {
            char* end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 10);
            if (end != env && *end == '\0') {
                return static_cast<std::size_t>(v);
            }
            std::fprintf(stderr, "nb: ignoring malformed NB_CACHE_BYTES '%s'\n", env);
        }
        return default_max_bytes;
    }());
    return cache;
}

std::shared_ptr<const SharedCodebook> CodebookCache::acquire(
    const Graph& graph, const SimulationParams& params) {
    return acquire_impl(graph, params, nullptr);
}

std::shared_ptr<const SharedCodebook> CodebookCache::acquire(
    const Graph& graph, const SimulationParams& params, const Codebook::ShardView& view) {
    return acquire_impl(graph, params, &view);
}

void CodebookCache::set_directory(const std::string& directory) {
    if (!directory.empty()) {
        if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
            throw precondition_error("CodebookCache: cannot create directory '" + directory +
                                     "': " + std::strerror(errno));
        }
        // Recovery, mirroring the ArtifactStore: `.tmp` debris is a durable-
        // but-unpublished write from a crashed saver — never loadable, always
        // safe to drop. Torn finals need no sweep; CodebookFile::map rejects
        // them and the next build atomically overwrites.
        if (DIR* dir = ::opendir(directory.c_str())) {
            while (const dirent* entry = ::readdir(dir)) {
                const std::string file = entry->d_name;
                if (file.size() > 4 && file.compare(file.size() - 4, 4, ".tmp") == 0) {
                    ::unlink((directory + "/" + file).c_str());
                }
            }
            ::closedir(dir);
        }
    }
    std::lock_guard<std::mutex> lock(directory_mutex_);
    directory_ = directory;
}

std::string CodebookCache::directory() const {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    return directory_;
}

std::shared_ptr<const SharedCodebook> CodebookCache::acquire_impl(
    const Graph& graph, const SimulationParams& params, const Codebook::ShardView* view) {
    const Key key = make_key(graph, params, view != nullptr ? view->digest() : 0);
    Shard& shard = *shards_[key.hash() % shards_.size()];

    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
        if (it->key == key) {
            ++shard.hits;
            shard.lru.splice(shard.lru.begin(), shard.lru, it);
            return shard.lru.front().codebook;
        }
    }

    // Miss: resolve while holding the shard lock, so a concurrent lookup of
    // the same key waits here and then hits — exactly-once construction.
    // With a warm-start directory set, a serialized index is mmap-loaded
    // instead of rebuilt (a disk_load, not a build); the file's identity
    // header re-verifies the full key, so a stale file or a key-hash
    // collision falls back to a fresh build that then overwrites it.
    std::shared_ptr<const SharedCodebook> built;
    std::string disk_path;
    if (const std::string dir = directory(); !dir.empty()) {
        disk_path = dir + "/" + key_file_name(key.hash());
        if (auto file = CodebookFile::map(disk_path)) {
            try {
                built = view != nullptr
                            ? std::make_shared<const SharedCodebook>(
                                  graph, canonical_params(params), *view, std::move(file))
                            : std::make_shared<const SharedCodebook>(
                                  graph, canonical_params(params), std::move(file));
                ++shard.disk_loads;
            } catch (const precondition_error&) {
                built = nullptr;  // identity mismatch: rebuild below
            }
        }
    }
    if (built == nullptr) {
        // The build counter moves *after* construction: a build that throws
        // (allocation failure, injected fault) did not produce a cached
        // codebook, and a retried job must observe the same counters as a
        // never-failed one.
        built = view != nullptr
                    ? std::make_shared<const SharedCodebook>(graph, canonical_params(params),
                                                             *view)
                    : std::make_shared<const SharedCodebook>(graph, canonical_params(params));
        ++shard.builds;
        if (!disk_path.empty()) {
            try {
                save_codebook(built->codebook(), disk_path);
                ++shard.disk_saves;
            } catch (const precondition_error&) {
                // Best-effort: a full disk or unwritable directory costs the
                // warm start, never the build in hand.
            }
        }
    }

    const std::size_t entry_bytes = built->memory_bytes();
    if (shard_byte_cap_ != 0 && entry_bytes > shard_byte_cap_) {
        // Graceful degradation: one codebook bigger than the shard's whole
        // byte budget is handed to the caller uncached instead of flushing
        // the shard (or failing). The caller's shared_ptr keeps it alive.
        ++shard.oversize_uncached;
        return built;
    }

    fp_cache_insert.check();
    shard.lru.push_front(Entry{key, built, entry_bytes});
    shard.bytes += entry_bytes;
    while (shard.lru.size() > shard_capacity_) {
        fp_cache_evict.check();
        shard.bytes -= shard.lru.back().bytes;
        shard.lru.pop_back();
        ++shard.evictions;
    }
    while (shard_byte_cap_ != 0 && shard.bytes > shard_byte_cap_ && shard.lru.size() > 1) {
        fp_cache_evict.check();
        shard.bytes -= shard.lru.back().bytes;
        shard.lru.pop_back();
        ++shard.evictions_capacity;
    }
    return built;
}

std::vector<std::size_t> CodebookCache::coloring(const Graph& graph) {
    const std::uint64_t digest = graph_digest(graph);
    const std::uint64_t digest2 = graph_digest2(graph);

    std::lock_guard<std::mutex> lock(coloring_mutex_);
    for (auto it = colorings_.begin(); it != colorings_.end(); ++it) {
        if (it->digest == digest && it->digest2 == digest2) {
            ++coloring_hits_;
            colorings_.splice(colorings_.begin(), colorings_, it);
            return colorings_.front().colors;
        }
    }

    ++coloring_builds_;
    ColoringEntry entry;
    entry.digest = digest;
    entry.digest2 = digest2;
    entry.colors = greedy_distance2_coloring(graph);
    colorings_.push_front(std::move(entry));
    while (colorings_.size() > coloring_capacity_) {
        colorings_.pop_back();
        ++coloring_evictions_;
    }
    return colorings_.front().colors;
}

CodebookCache::Stats CodebookCache::stats() const {
    // All locks are taken before any counter is read — always in shard order
    // then the coloring lock, and nothing in this class acquires two of these
    // locks in any other order, so the nested acquisition cannot deadlock.
    // Locking one shard at a time would let a lookup that completes between
    // two shard reads appear in neither (or a build in one shard pair with
    // its hit missing), which is exactly the skew a concurrent server's
    // hit-rate report must not have.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size() + 1);
    for (const auto& shard : shards_) {
        locks.emplace_back(shard->mutex);
    }
    locks.emplace_back(coloring_mutex_);

    Stats total;
    for (const auto& shard : shards_) {
        total.hits += shard->hits;
        total.builds += shard->builds;
        total.evictions += shard->evictions;
        total.evictions_capacity += shard->evictions_capacity;
        total.bytes_resident += shard->bytes;
        total.oversize_uncached += shard->oversize_uncached;
        total.disk_loads += shard->disk_loads;
        total.disk_saves += shard->disk_saves;
    }
    total.coloring_hits = coloring_hits_;
    total.coloring_builds = coloring_builds_;
    total.coloring_evictions = coloring_evictions_;
    return total;
}

void CodebookCache::clear() {
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->bytes = 0;
        shard->hits = 0;
        shard->builds = 0;
        shard->evictions = 0;
        shard->evictions_capacity = 0;
        shard->oversize_uncached = 0;
        shard->disk_loads = 0;
        shard->disk_saves = 0;
    }
    std::lock_guard<std::mutex> lock(coloring_mutex_);
    colorings_.clear();
    coloring_hits_ = 0;
    coloring_builds_ = 0;
    coloring_evictions_ = 0;
}

}  // namespace nb
