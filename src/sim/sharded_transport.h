// Sharded transport: the partitioned simulation of Algorithm 1 that scales
// to n = 10^6 (DESIGN.md section 10).
//
// The topology is split into k contiguous ownership ranges (graph/
// partition.h). Each shard carries its closure subgraph (owned nodes plus a
// two-hop halo), its own Codebook built through a ShardView — input streams
// r_v keyed by *global* node id, beep-code length from the *global* max
// degree — and decodes its owned nodes with the exact per-node pipeline of
// decode_core.h. Per round the shards only exchange boundary beep activity:
// every owned node some other shard can hear within two hops publishes its
// phase-1 codeword and phase-2 combined schedule into a fixed-layout
// boundary table (one writer per row, SST-style), and each shard fills its
// halo slots from the rows its imports name. Because every derived stream
// is keyed globally and every halo slot is filled with exactly the bits the
// unsharded transport would have used, the output batch is bit-identical
// to BeepTransport for any shard count and any worker count.
//
// What sharding buys: the per-round Codebook build (codeword sampling
// dominates at large n) and the decode both run per shard on the pool, so
// a round parallelizes k ways end to end — the unsharded transport builds
// rounds on one thread (pipelined at most one round ahead).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "sim/codebook.h"
#include "sim/codebook_cache.h"
#include "sim/params.h"
#include "sim/transport.h"

namespace nb {

class ShardedTransport final : public Transport {
public:
    /// Partition `graph` into (at most) `shard_count` shards. The graph must
    /// outlive the transport. Dictionary policies whose candidate sets are
    /// not local (all_nodes) fall back to an internal BeepTransport — every
    /// call delegates, outputs are identical by construction.
    ShardedTransport(const Graph& graph, SimulationParams params, std::size_t shard_count);

    using Transport::simulate_round;

    std::vector<TransportRound> simulate_rounds(
        std::span<const RoundSpec> specs) const override;

    /// The zero-copy batch path; bit-identical to
    /// BeepTransport::simulate_rounds_into on the same graph and params (the
    /// sharding goldens pin this).
    void simulate_rounds_into(std::span<const RoundSpec> specs, TransportBatch& batch) const;

    /// Fault-injected variant (same semantics as BeepTransport's).
    TransportRound simulate_round(const std::vector<std::optional<Bitstring>>& messages,
                                  std::uint64_t round_nonce, const FaultModel& faults) const;

    std::size_t rounds_per_broadcast_round() const override;

    const SimulationParams& params() const noexcept { return params_; }
    const Graph& graph() const noexcept override { return graph_; }

    /// Shards actually used (clamped to max(1, n); 0 when delegating).
    std::size_t shard_count() const noexcept {
        return fallback_ != nullptr ? 0 : plan_.shard_count();
    }

    /// The partition (empty when delegating to the fallback transport).
    const ShardPlan& plan() const noexcept { return plan_; }

    /// Shard s's codebook (shared-cache build or private, per params).
    const Codebook& shard_codebook(std::size_t s) const { return *shards_[s].codebook; }

private:
    struct ShardState {
        std::shared_ptr<const SharedCodebook> shared;  ///< cache-owned
        std::unique_ptr<Codebook> owned;               ///< private build
        const Codebook* codebook = nullptr;
    };

    void decode_rounds(std::span<const RoundSpec> specs, TransportBatch& batch) const;

    const Graph& graph_;
    SimulationParams params_;
    std::unique_ptr<BeepTransport> fallback_;  ///< non-local dictionary delegate
    ShardPlan plan_;
    std::vector<ShardState> shards_;
    std::unique_ptr<ThreadPool> pool_;

    std::size_t beep_length_ = 0;
    // Boundary-table layout, fixed at construction: each export row is
    // 2 * words_per_schedule_ words (phase-1 codeword, then phase-2 combined
    // schedule), rows of shard s start at row_offset_words_[s].
    std::size_t words_per_schedule_ = 0;
    std::vector<std::size_t> row_offset_words_;
    std::size_t table_words_ = 0;
};

}  // namespace nb
