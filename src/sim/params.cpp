#include "sim/params.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nb {

void SimulationParams::validate() const {
    require(epsilon >= 0.0 && epsilon < 0.5,
            "SimulationParams: epsilon must be in [0, 1/2)");
    require(message_bits >= 1, "SimulationParams: message_bits must be >= 1");
    require(c_eps >= 3, "SimulationParams: c_eps must be >= 3");
    if (channel.has_value()) {
        channel->validate();
        // BatchEngine (the transports' only engine) supports the paper
        // convention only.
        require(channel->noise_on_own_beep,
                "SimulationParams: transports require noise_on_own_beep");
    }
}

std::size_t SimulationParams::paper_c_eps(double epsilon) {
    require(epsilon >= 0.0 && epsilon < 0.5, "paper_c_eps: epsilon must be in [0, 1/2)");
    // Section 3 requires c_eps >= 108 so the distance code of length
    // c_eps^2 * B satisfies Lemma 6 (c_delta >= 12*(1-2/3... )^-2 = 108 for
    // delta = 1/3; the paper conservatively asks c_eps itself >= 108).
    double bound = 108.0;
    if (epsilon > 0.0) {
        const double one_minus_2e = 1.0 - 2.0 * epsilon;
        // Lemma 9: c_eps >= 60/(1-2e), 54/((1-2e)^2 e) + 5, (6/e)*(1/(4e)-1/2)^-2.
        bound = std::max(bound, 60.0 / one_minus_2e);
        bound = std::max(bound, 54.0 / (one_minus_2e * one_minus_2e * epsilon) + 5.0);
        const double inner = 1.0 / (4.0 * epsilon) - 0.5;
        bound = std::max(bound, (6.0 / epsilon) / (inner * inner));
        // Lemma 10: c_eps >= 30/(e(1-2e)), 6*((1-e)(1-2e)/(e(7-2e)))^-2.
        bound = std::max(bound, 30.0 / (epsilon * one_minus_2e));
        const double ratio = (1.0 - epsilon) * one_minus_2e / (epsilon * (7.0 - 2.0 * epsilon));
        bound = std::max(bound, 6.0 / (ratio * ratio));
    }
    return static_cast<std::size_t>(std::ceil(bound));
}

std::size_t SimulationParams::payload_bits() const noexcept { return message_bits + 1; }

std::size_t SimulationParams::distance_code_length() const noexcept {
    return c_eps * c_eps * payload_bits();
}

std::size_t SimulationParams::beep_code_input_bits() const noexcept {
    return c_eps * payload_bits();
}

std::size_t SimulationParams::beep_code_length(std::size_t delta) const noexcept {
    // b = c^2 * k * a with k = Delta+1 and a = c_eps * payload_bits:
    // c_eps^3 * (Delta+1) * payload_bits.
    return c_eps * c_eps * c_eps * (delta + 1) * payload_bits();
}

std::size_t SimulationParams::rounds_per_broadcast_round(std::size_t delta) const noexcept {
    return 2 * beep_code_length(delta);
}

}  // namespace nb
