// Process-wide cache of Codebooks (and the TDMA baseline's G^2 colorings),
// shared across transports (see DESIGN.md section 7).
//
// A Codebook is a pure function of the graph's adjacency and a handful of
// SimulationParams fields (message_bits, c_eps, seeds, decoy_count,
// dictionary policy, bitslice threshold). It is NOT a function of the
// channel model, the design epsilon, or the thread count — exactly the axes
// a scenario sweep varies most. Before this cache, every transport built its
// own Codebook, so a 3-seed sweep of one spec paid the code-triple and
// two-hop-dictionary construction three times; now concurrent jobs sharing
// the build parameters get one build and N-1 hits.
//
// Structure: a fixed number of shards, each an LRU list of
// (key, shared_ptr<SharedCodebook>) pairs under its own mutex. The shard
// mutex is held *across a miss's build*: a concurrent lookup of the same key
// waits and then hits, so every key is built exactly once per residency —
// the contract the cache counter tests pin. (Different keys in the same
// shard serialize their builds too; with 8 shards and builds being rare,
// that is a non-issue, and it keeps the cache free of in-flight bookkeeping.)
//
// Entries own a *copy* of the graph and build the Codebook against that
// copy, so a cached Codebook never dangles when the transport whose graph
// triggered the build dies. Keys carry *two* independently seeded adjacency
// digests (plus the node count), computed in one streaming pass each; a hit
// requires both to match. The earlier design confirmed a digest match by
// exact adjacency comparison, which walked — and the coloring cache even
// copied — the whole graph per lookup; at sharded scale (10^5-node
// subgraphs keyed once per shard) that comparison cost more than the hit
// saved. A 128-bit digest pair makes an alias a ~2^-128 event per pair of
// distinct graphs, which is the same collision budget content-addressed
// stores run on.
//
// Counters (hits/builds/evictions, plus the coloring set; misses are not
// counted separately because every miss builds under the lock, so
// misses == builds by construction) are
// deterministic for a given workload as long as the working set fits the
// capacity: lookups and exactly-once builds do not depend on thread
// interleaving. Under eviction pressure the LRU order — and therefore which
// keys rebuild — can depend on job completion order; the shipped sweeps stay
// far below capacity (see DESIGN.md section 7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/codebook.h"
#include "sim/params.h"

namespace nb {

/// A cache entry: the owned graph copy and the Codebook built against it.
/// The member order is load-bearing — the Codebook references graph_.
class SharedCodebook {
public:
    SharedCodebook(const Graph& graph, const SimulationParams& params)
        : graph_(graph), codebook_(graph_, params) {}

    /// Shard-view build (Codebook::ShardView): the graph is a shard closure.
    SharedCodebook(const Graph& graph, const SimulationParams& params,
                   Codebook::ShardView view)
        : graph_(graph), codebook_(graph_, params, std::move(view)) {}

    /// Mmap-backed builds (sim/codebook_io.h): the candidate index is
    /// borrowed from the mapped file, which the codebook keeps alive.
    SharedCodebook(const Graph& graph, const SimulationParams& params,
                   std::shared_ptr<const CodebookFile> file)
        : graph_(graph), codebook_(graph_, params, std::move(file)) {}
    SharedCodebook(const Graph& graph, const SimulationParams& params,
                   Codebook::ShardView view, std::shared_ptr<const CodebookFile> file)
        : graph_(graph), codebook_(graph_, params, std::move(view), std::move(file)) {}

    const Codebook& codebook() const noexcept { return codebook_; }
    const Graph& graph() const noexcept { return graph_; }

    /// Deterministic footprint estimate the cache's byte accounting charges
    /// for this entry: the owned graph copy plus the codebook's estimate.
    std::size_t memory_bytes() const;

private:
    Graph graph_;
    Codebook codebook_;
};

class CodebookCache {
public:
    /// `shard_capacity` codebooks per shard; least recently used beyond that
    /// are evicted (dropped from the cache — transports holding the
    /// shared_ptr keep their codebook alive regardless). `max_bytes` caps the
    /// total byte-accounted footprint (split evenly across shards; 0 =
    /// unlimited): under byte pressure the LRU tail is evicted, and a single
    /// codebook larger than a shard's byte budget is built and returned
    /// *uncached* rather than failing or flushing the shard. The process-wide
    /// instance defaults to 1 GiB, overridable via NB_CACHE_BYTES.
    explicit CodebookCache(std::size_t shard_count = 8, std::size_t shard_capacity = 8,
                           std::size_t max_bytes = default_max_bytes);

    CodebookCache(const CodebookCache&) = delete;
    CodebookCache& operator=(const CodebookCache&) = delete;

    /// The process-wide instance every cache-enabled transport consults.
    static CodebookCache& instance();

    /// The cached codebook for (graph, params), built on first use. The
    /// returned entry is independent of `graph`'s lifetime.
    std::shared_ptr<const SharedCodebook> acquire(const Graph& graph,
                                                  const SimulationParams& params);

    /// acquire() for a shard-view codebook: the key additionally carries the
    /// view digest, so two shards with equal closures but different owned
    /// ranges (or global geometry) never alias.
    std::shared_ptr<const SharedCodebook> acquire(const Graph& graph,
                                                  const SimulationParams& params,
                                                  const Codebook::ShardView& view);

    /// The cached greedy G^2 coloring of `graph` (the TDMA baseline's
    /// expensive per-transport setup), as a copy the caller owns.
    std::vector<std::size_t> coloring(const Graph& graph);

    /// Enable (or, with "", disable) the warm-start directory: every miss
    /// first tries to mmap-load `<dir>/cb-<key-hash>.nbc` (counted as a
    /// disk_load, not a build), and every completed build is serialized
    /// there best-effort (nb-codebook/v1, atomic-rename durable), so the
    /// next process cold-starts warm. The directory is created if missing
    /// and `.tmp` debris from a crashed writer is removed, mirroring the
    /// ArtifactStore's recovery. Files whose identity header does not match
    /// the key (stale graph, hash collision) are ignored and overwritten by
    /// the fresh build's save.
    void set_directory(const std::string& directory);
    std::string directory() const;

    struct Stats {
        std::uint64_t hits = 0;       ///< codebook lookups served from cache
        std::uint64_t builds = 0;     ///< *successful* Codebook constructions
                                      ///< (== misses that completed; a build
                                      ///< that throws is not counted)
        std::uint64_t evictions = 0;  ///< codebooks dropped by count-LRU pressure
        std::uint64_t evictions_capacity = 0;  ///< codebooks dropped by the byte cap
        std::uint64_t bytes_resident = 0;      ///< byte-accounted footprint now cached
        std::uint64_t oversize_uncached = 0;   ///< builds too large to cache at all
        std::uint64_t disk_loads = 0;   ///< misses served by an mmap-loaded file
        std::uint64_t disk_saves = 0;   ///< builds serialized to the directory
        std::uint64_t coloring_hits = 0;
        std::uint64_t coloring_builds = 0;
        std::uint64_t coloring_evictions = 0;

        /// hits / lookups (a disk load is a lookup that was neither a hit
        /// nor a build), 0 when nothing has been looked up — the one derived
        /// figure every consumer (nb_serve's `stats` response, nb_load's
        /// BENCH_serve.json, the bench console reports) wants, so it is
        /// computed here once instead of ad-hoc at each call site.
        double hit_rate() const noexcept {
            const std::uint64_t lookups = hits + builds + disk_loads;
            return lookups == 0 ? 0.0
                                : static_cast<double>(hits) / static_cast<double>(lookups);
        }
    };

    /// Consistent snapshot of every counter: all shard locks and the coloring
    /// lock are held simultaneously while the totals are read, so the
    /// returned struct describes one instant — hits + builds equals the
    /// lookups that had completed at that instant, and concurrent traffic
    /// cannot skew a rate computed from two fields. nb_serve's `stats`
    /// request reports this snapshot verbatim while executor threads run.
    Stats stats() const;

    /// Drop every entry and zero the counters. Tests use this to make
    /// counter assertions independent of what ran earlier in the process.
    void clear();

    /// The params a cached build actually uses: `params` with the fields a
    /// Codebook never reads (epsilon, channel, threads) normalized away, so
    /// transports differing only in those share one cache key.
    static SimulationParams canonical_params(const SimulationParams& params);

    /// Order-sensitive digest of the adjacency structure (node count plus
    /// every sorted neighbor list).
    static std::uint64_t graph_digest(const Graph& graph);

    /// Second adjacency digest with an independent seed and mixing schedule;
    /// the (graph_digest, graph_digest2) pair is the streaming replacement
    /// for the old exact-adjacency hit confirmation.
    static std::uint64_t graph_digest2(const Graph& graph);

    /// Digest of the cache key acquire(graph, params) would use. The sweep
    /// engine's analytic cold-start cache block counts distinct key digests
    /// to predict exactly-once builds without touching the cache.
    static std::uint64_t key_digest(const Graph& graph, const SimulationParams& params);

private:
    struct Key {
        std::uint64_t graph_digest = 0;
        std::uint64_t graph_digest2 = 0;
        std::uint64_t shard_digest = 0;  ///< Codebook::ShardView::digest(); 0 unsharded
        std::size_t node_count = 0;
        std::size_t message_bits = 0;
        std::size_t c_eps = 0;
        std::uint64_t code_seed = 0;
        std::uint64_t transport_seed = 0;
        std::size_t decoy_count = 0;
        std::size_t bitslice_min_candidates = 0;
        DictionaryPolicy dictionary = DictionaryPolicy::two_hop;

        bool operator==(const Key&) const = default;
        std::uint64_t hash() const;
    };

    struct Entry {
        Key key;
        std::shared_ptr<const SharedCodebook> codebook;
        std::size_t bytes = 0;  ///< memory_bytes() at insert, charged until evicted
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru;  ///< most recently used first
        std::size_t bytes = 0;  ///< sum of resident entry bytes
        std::uint64_t hits = 0;
        std::uint64_t builds = 0;
        std::uint64_t evictions = 0;
        std::uint64_t evictions_capacity = 0;
        std::uint64_t oversize_uncached = 0;
        std::uint64_t disk_loads = 0;
        std::uint64_t disk_saves = 0;
    };

    /// A coloring entry is keyed by the digest pair — no graph copy.
    struct ColoringEntry {
        std::uint64_t digest = 0;
        std::uint64_t digest2 = 0;
        std::vector<std::size_t> colors;
    };

    static Key make_key(const Graph& graph, const SimulationParams& params,
                        std::uint64_t shard_digest = 0);

    std::shared_ptr<const SharedCodebook> acquire_impl(const Graph& graph,
                                                       const SimulationParams& params,
                                                       const Codebook::ShardView* view);

    /// Process-wide default byte cap (1 GiB); NB_CACHE_BYTES overrides it
    /// for the instance(). Far above any shipped workload — the cap exists
    /// so a pathological sweep degrades by evicting instead of growing until
    /// the OS kills the process.
    static constexpr std::size_t default_max_bytes = std::size_t{1} << 30;

    std::size_t shard_capacity_;
    std::size_t shard_byte_cap_;  ///< max_bytes / shard_count; 0 = unlimited
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex directory_mutex_;
    std::string directory_;  ///< warm-start dir; empty = disk path disabled

    mutable std::mutex coloring_mutex_;
    std::list<ColoringEntry> colorings_;  ///< most recently used first
    std::size_t coloring_capacity_;
    std::uint64_t coloring_hits_ = 0;
    std::uint64_t coloring_builds_ = 0;
    std::uint64_t coloring_evictions_ = 0;
};

}  // namespace nb
