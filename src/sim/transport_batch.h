// Caller-owned zero-copy result storage for batched transport simulation.
//
// simulate_rounds() returns vector<vector<Bitstring>> deliveries — two heap
// levels per node per round, allocated anew each call. At batch rates that
// allocation traffic, not decoding, caps throughput. A TransportBatch
// replaces it with arena storage sized once and reused forever:
//
//   * every delivered message is a fixed-stride record (the payload tail's
//     packed words — one message size per transport, so records need no
//     per-message length);
//   * each pool worker bump-allocates records into its own arena, so the
//     parallel decode loop has one writer per arena and no synchronization
//     (the one-writer-per-slot idiom of shared-state tables like Derecho's
//     SST);
//   * a (round, node) slot records where that node's run landed: (worker,
//     offset, count). Runs are contiguous because a worker decodes one node
//     at a time.
//
// Arenas and slot tables keep their capacity across simulate_rounds_into
// calls: after the first batch of a steady-state workload reaches its
// high-water mark, decoding performs no heap allocation at all (asserted by
// the steady-state allocation tests). The batch is written by one
// simulate_rounds_into call at a time (readers may inspect it between
// calls); it is not a concurrent container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/bitstring.h"
#include "graph/graph.h"

namespace nb {

struct TransportRound;

namespace transport_detail {
struct DecodeContext;
void decode_node(const DecodeContext& ctx, std::size_t worker, NodeId v);
}  // namespace transport_detail

/// One round's counters — TransportRound minus the delivered storage.
struct TransportRoundStats {
    std::size_t beep_rounds = 0;
    std::size_t total_beeps = 0;
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    std::size_t delivery_mismatches = 0;
    bool perfect = true;
};

class TransportBatch {
public:
    TransportBatch();
    ~TransportBatch();
    TransportBatch(TransportBatch&&) noexcept;
    TransportBatch& operator=(TransportBatch&&) noexcept;
    TransportBatch(const TransportBatch&) = delete;
    TransportBatch& operator=(const TransportBatch&) = delete;

    std::size_t rounds() const noexcept { return rounds_; }
    std::size_t nodes() const noexcept { return nodes_; }

    /// Bits per delivered message (the transport's message_bits).
    std::size_t message_bits() const noexcept { return message_bits_; }

    /// Packed words per delivered record.
    std::size_t message_words() const noexcept { return stride_; }

    const TransportRoundStats& stats(std::size_t round) const;

    /// Messages node v delivered in `round` (sorted by message_less, exactly
    /// as TransportRound::delivered[v] would be).
    std::size_t delivered_count(std::size_t round, NodeId v) const;

    /// Record i of (round, v) as its packed words — a view into the arena,
    /// valid until the next simulate_rounds_into on this batch. No copy.
    std::span<const std::uint64_t> delivered_words(std::size_t round, NodeId v,
                                                   std::size_t i) const;

    /// Record i of (round, v) as an owning Bitstring (allocates; the
    /// convenience accessor for tests and non-hot callers).
    Bitstring delivered_message(std::size_t round, NodeId v, std::size_t i) const;

    /// The TransportRound this batch's round would have produced through
    /// simulate_rounds — the compatibility bridge (allocates per delivery).
    TransportRound to_round(std::size_t round) const;

    /// Arena words currently allocated across workers (observability; the
    /// benches report it alongside the allocation counter).
    std::size_t arena_words() const noexcept;

private:
    friend class BeepTransport;
    friend class ShardedTransport;
    friend void transport_detail::decode_node(const transport_detail::DecodeContext& ctx,
                                              std::size_t worker, NodeId v);

    struct Slot {
        std::uint32_t worker = 0;
        std::uint32_t count = 0;
        std::uint64_t offset = 0;  ///< word offset of the run in its arena
    };

    /// Reusable decode scratch (workspaces, fault state, diagnostics) owned
    /// by the batch so repeated simulate_rounds_into calls allocate nothing
    /// once warm. Defined in decode_core.h (internal); the shared_ptr
    /// type-erases the deleter so this header stays independent of it.
    struct Scratch;

    /// Size the slot/stat tables for a batch (keeps capacity; resets
    /// cursors). Called by simulate_rounds_into.
    void prepare(std::size_t rounds, std::size_t nodes, std::size_t message_bits,
                 std::size_t workers);

    /// Bump-allocate one record in `worker`'s arena; returns its offset.
    /// The pointer for writing must be re-derived from the offset (growth
    /// may move the arena).
    std::uint64_t push_record(std::size_t worker);

    std::uint64_t* record_at(std::size_t worker, std::uint64_t offset) noexcept {
        return arenas_[worker].data() + offset;
    }
    const std::uint64_t* record_at(std::size_t worker, std::uint64_t offset) const noexcept {
        return arenas_[worker].data() + offset;
    }

    /// Sort the node's run (insertion sort on fixed-stride records, ordered
    /// exactly like message_less on equal-size strings) and publish its
    /// slot. `tmp` is caller scratch of at least message_words() words.
    void commit_node(std::size_t round, NodeId v, std::size_t worker, std::uint64_t start,
                     std::uint32_t count, std::vector<std::uint64_t>& tmp);

    std::size_t rounds_ = 0;
    std::size_t nodes_ = 0;
    std::size_t message_bits_ = 0;
    std::size_t stride_ = 0;
    std::vector<Slot> slots_;  ///< rounds * nodes, row-major by round
    std::vector<TransportRoundStats> stats_;
    std::vector<AlignedWords> arenas_;     ///< one per pool worker
    std::vector<std::size_t> arena_used_;  ///< bump cursors, in words
    std::shared_ptr<Scratch> scratch_;
};

}  // namespace nb
