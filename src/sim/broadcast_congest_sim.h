// Theorem 11: run any Broadcast CONGEST algorithm in the noisy beeping model.
//
// Each communication round of the algorithm is simulated with Algorithm 1
// (BeepTransport), costing O(Delta log n) beep rounds. Node-level random
// choices come from the same derived streams as the native engine, so a run
// here and a native run with equal algorithm_seed are comparable output-for-
// output (they agree whenever every simulated round delivers correctly).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "congest/native_engine.h"
#include "graph/graph.h"
#include "sim/transport.h"

namespace nb {

/// Outcome of a simulated run.
struct SimulatedRunStats {
    std::size_t congest_rounds = 0;   ///< Broadcast CONGEST rounds simulated
    std::size_t beep_rounds = 0;      ///< total beep rounds spent
    std::size_t total_beeps = 0;      ///< total energy
    std::size_t imperfect_rounds = 0; ///< rounds with any delivery mismatch
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    bool all_finished = false;
};

class BroadcastCongestOverBeeps {
public:
    /// Own an Algorithm 1 transport built from `sim_params`.
    BroadcastCongestOverBeeps(const Graph& graph, SimulationParams sim_params,
                              CongestParams congest_params);

    /// Run over an externally supplied transport (e.g. the TDMA baseline).
    /// The transport must outlive this engine.
    BroadcastCongestOverBeeps(const Transport& transport, CongestParams congest_params);

    /// Run until every node's algorithm is finished or `max_rounds`
    /// Broadcast CONGEST rounds have been simulated.
    SimulatedRunStats run(std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes,
                          std::size_t max_rounds);

    const Transport& transport() const noexcept { return *transport_; }

private:
    std::unique_ptr<Transport> owned_;  ///< set when this engine owns the transport
    const Transport* transport_;        ///< never null
    CongestParams congest_params_;
};

}  // namespace nb
