#include "sim/codebook.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/error.h"
#include "common/failpoint.h"
#include "sim/codebook_cache.h"
#include "sim/codebook_io.h"

namespace nb {

namespace {

NB_FAILPOINT_DEFINE(fp_codebook_build, "codebook.build");

/// Pad/flag an optional algorithm message into a transport payload:
/// bit 0 = presence, bits 1..message_bits = the message (zero-padded).
Bitstring make_payload(const std::optional<Bitstring>& message, std::size_t message_bits) {
    Bitstring payload(message_bits + 1);
    if (message.has_value()) {
        require(message->size() <= message_bits,
                "BeepTransport: message exceeds the bit budget");
        payload.set(0);
        message->for_each_one([&payload](std::size_t i) { payload.set(1 + i); });
    }
    return payload;
}

std::shared_ptr<const CombinedCode> make_combined(const SimulationParams& params,
                                                  std::size_t max_degree) {
    return std::make_shared<const CombinedCode>(
        BeepCode(params.beep_code_length(max_degree), params.distance_code_length(),
                 params.code_seed),
        DistanceCode(params.payload_bits(), params.distance_code_length(),
                     mix64(params.code_seed ^ 0x64636f64u)));
}

/// The dictionary-order tail every candidate row ends with: the null payload
/// entry, then the decoys.
std::vector<std::uint32_t> make_tail(std::size_t node_count, std::size_t decoy_count) {
    const auto n32 = static_cast<std::uint32_t>(node_count);
    std::vector<std::uint32_t> tail;
    tail.reserve(1 + decoy_count);
    tail.push_back(n32);
    for (std::size_t i = 0; i < decoy_count; ++i) {
        tail.push_back(n32 + 1 + static_cast<std::uint32_t>(i));
    }
    return tail;
}

/// Append node v's sorted two-hop candidate set to `entries` (no tail).
void append_two_hop_set(const Graph& graph, NodeId v, std::vector<std::uint32_t>& entries) {
    std::unordered_set<NodeId> reachable;
    for (const auto u : graph.neighbors(v)) {
        reachable.insert(u);
        for (const auto w : graph.neighbors(u)) {
            if (w != v) {
                reachable.insert(w);
            }
        }
    }
    const std::size_t begin = entries.size();
    entries.insert(entries.end(), reachable.begin(), reachable.end());
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(begin), entries.end());
}

}  // namespace

std::uint64_t Codebook::ShardView::digest() const {
    std::uint64_t h = 0x73686172645f7677ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(global_node_count);
    mix(global_max_degree);
    mix(owned_begin);
    mix(owned_count);
    mix(global_ids.size());
    for (const auto id : global_ids) {
        mix(id);
    }
    return h;
}

bool Codebook::same_codebook_params(const SimulationParams& a, const SimulationParams& b) {
    return a.message_bits == b.message_bits && a.c_eps == b.c_eps &&
           a.code_seed == b.code_seed && a.transport_seed == b.transport_seed &&
           a.decoy_count == b.decoy_count &&
           a.bitslice_min_candidates == b.bitslice_min_candidates &&
           a.dictionary == b.dictionary;
}

Codebook::Codebook(const Graph& graph, const SimulationParams& params)
    : Codebook(graph, params, std::nullopt, nullptr) {}

Codebook::Codebook(const Graph& graph, const SimulationParams& params, ShardView view)
    : Codebook(graph, params, std::optional<ShardView>(std::move(view)), nullptr) {}

Codebook::Codebook(const Graph& graph, const SimulationParams& params,
                   std::shared_ptr<const CodebookFile> file)
    : Codebook(graph, params, std::nullopt, std::move(file)) {}

Codebook::Codebook(const Graph& graph, const SimulationParams& params, ShardView view,
                   std::shared_ptr<const CodebookFile> file)
    : Codebook(graph, params, std::optional<ShardView>(std::move(view)), std::move(file)) {}

Codebook::Codebook(const Graph& graph, const SimulationParams& params,
                   std::optional<ShardView> view, std::shared_ptr<const CodebookFile> file)
    : graph_(graph),
      params_(params),
      view_(std::move(view)),
      combined_(make_combined(params,
                              view_.has_value()
                                  ? static_cast<std::size_t>(view_->global_max_degree)
                                  : graph.max_degree())),
      file_(std::move(file)) {
    fp_codebook_build.check();
    params_.validate();
    if (view_.has_value()) {
        require(params_.dictionary == DictionaryPolicy::two_hop,
                "Codebook: shard views require the two_hop dictionary");
        require(view_->global_ids.size() == graph_.node_count(),
                "Codebook: shard view must map every local node");
        require(view_->owned_begin + view_->owned_count <= graph_.node_count(),
                "Codebook: shard view owned range out of bounds");
    }
    stats_.code_builds = 1;
    if (file_ != nullptr) {
        adopt_candidate_index();
    } else {
        build_candidate_index();
    }
}

Codebook::Codebook(const Graph& graph, const SimulationParams& params, const Codebook& base)
    : graph_(graph), params_(params) {
    fp_codebook_build.check();
    params_.validate();
    require(base.shard_view() == nullptr, "Codebook: delta builds require an unsharded base");
    require(same_codebook_params(params_, base.params_),
            "Codebook: delta builds require codebook-identical params "
            "(message_bits, c_eps, seeds, decoy_count, bitslice threshold, dictionary)");

    // The beep-code length depends on the max degree, not on n, so nearby
    // graph sizes share one code triple — and with it the base's cached
    // round as a same-nonce donor (every donor-copied value is derived from
    // the shared seeds, see build_round).
    if (params_.beep_code_length(graph_.max_degree()) == base.combined_->length()) {
        combined_ = base.combined_;
        std::lock_guard<std::mutex> lock(base.mutex_);
        donor_round_ = base.cached_;
    } else {
        combined_ = make_combined(params_, graph_.max_degree());
        stats_.code_builds = 1;
    }

    if (graph_.node_count() < base.graph_.node_count()) {
        // Shrinking renumbers the entry space under every surviving row
        // (tail ids shift down through the node block); model removal as
        // isolating the node instead to stay on the delta path.
        ++stats_.delta_full_rebuilds;
        build_candidate_index();
        return;
    }
    build_candidate_index_delta(base);
}

void Codebook::build_candidate_index() {
    const std::size_t n = graph_.node_count();
    const std::vector<std::uint32_t> tail = make_tail(n, params_.decoy_count);

    owned_offsets_.clear();
    owned_entries_.clear();
    owned_offsets_.push_back(0);
    if (params_.dictionary == DictionaryPolicy::two_hop) {
        owned_offsets_.reserve(n + 1);
        for (NodeId v = 0; v < n; ++v) {
            append_two_hop_set(graph_, v, owned_entries_);
            owned_entries_.insert(owned_entries_.end(), tail.begin(), tail.end());
            owned_offsets_.push_back(owned_entries_.size());
        }
    } else {
        owned_entries_.reserve(n + tail.size());
        for (NodeId u = 0; u < n; ++u) {
            owned_entries_.push_back(u);
        }
        owned_entries_.insert(owned_entries_.end(), tail.begin(), tail.end());
        owned_offsets_.push_back(owned_entries_.size());
    }
    offsets_ = owned_offsets_;
    entries_ = owned_entries_;
}

void Codebook::build_candidate_index_delta(const Codebook& base) {
    const std::size_t n = graph_.node_count();
    const std::size_t base_n = base.graph_.node_count();  // <= n on this path
    const std::vector<std::uint32_t> tail = make_tail(n, params_.decoy_count);

    if (params_.dictionary != DictionaryPolicy::two_hop) {
        // The shared all-nodes row is O(n) to begin with — rebuilding it IS
        // the delta.
        build_candidate_index();
        ++stats_.dictionary_rows_built;
        return;
    }

    // S: nodes whose own adjacency differs (appended nodes included). An
    // undirected edge edit changes both endpoints' neighbor lists, so S is
    // closed under edits; the rows that can see an edit through an unchanged
    // list are exactly S's neighbors on either side of it.
    std::vector<char> dirty(n, 0);
    std::vector<NodeId> changed;
    for (NodeId v = 0; v < n; ++v) {
        if (v >= base_n) {
            changed.push_back(v);
            dirty[v] = 1;
            continue;
        }
        const auto now = graph_.neighbors(v);
        const auto before = base.graph_.neighbors(v);
        if (now.size() != before.size() ||
            !std::equal(now.begin(), now.end(), before.begin())) {
            changed.push_back(v);
            dirty[v] = 1;
        }
    }
    for (const NodeId v : changed) {
        for (const auto u : graph_.neighbors(v)) {
            dirty[u] = 1;
        }
        if (v < base_n) {
            for (const auto u : base.graph_.neighbors(v)) {
                dirty[u] = 1;
            }
        }
    }

    // Clean rows: the two-hop set is unchanged, so copy the node-id prefix
    // verbatim and re-emit the tail (whose ids depend on n). Dirty rows are
    // recomputed from the new adjacency.
    const std::size_t tail_size = tail.size();  // equal params => equal base tail size
    owned_offsets_.clear();
    owned_entries_.clear();
    owned_offsets_.reserve(n + 1);
    owned_offsets_.push_back(0);
    for (NodeId v = 0; v < n; ++v) {
        if (dirty[v] == 0) {
            const auto row = base.candidate_row(v);
            const auto prefix = row.first(row.size() - tail_size);
            owned_entries_.insert(owned_entries_.end(), prefix.begin(), prefix.end());
            ++stats_.dictionary_rows_reused;
        } else {
            append_two_hop_set(graph_, v, owned_entries_);
            ++stats_.dictionary_rows_built;
        }
        owned_entries_.insert(owned_entries_.end(), tail.begin(), tail.end());
        owned_offsets_.push_back(owned_entries_.size());
    }
    offsets_ = owned_offsets_;
    entries_ = owned_entries_;
}

void Codebook::adopt_candidate_index() {
    const auto& header = file_->header();
    const std::size_t n = graph_.node_count();
    require(header.node_count == n, "Codebook: codebook file node count mismatch");
    require(header.dictionary == static_cast<std::uint32_t>(params_.dictionary),
            "Codebook: codebook file dictionary policy mismatch");
    require(header.message_bits == params_.message_bits && header.c_eps == params_.c_eps &&
                header.code_seed == params_.code_seed &&
                header.transport_seed == params_.transport_seed &&
                header.decoy_count == params_.decoy_count &&
                header.bitslice_min_candidates == params_.bitslice_min_candidates,
            "Codebook: codebook file params mismatch");
    const std::uint64_t shard_digest = view_.has_value() ? view_->digest() : 0;
    require(header.shard_digest == shard_digest,
            "Codebook: codebook file shard view mismatch");
    const std::size_t max_degree = view_.has_value()
                                       ? static_cast<std::size_t>(view_->global_max_degree)
                                       : graph_.max_degree();
    require(header.max_degree == max_degree, "Codebook: codebook file max degree mismatch");
    // The digest pair is the same 128-bit identity the CodebookCache keys
    // on: a file written for a different adjacency cannot adopt.
    require(header.graph_digest == CodebookCache::graph_digest(graph_) &&
                header.graph_digest2 == CodebookCache::graph_digest2(graph_),
            "Codebook: codebook file graph digest mismatch");
    const std::size_t rows = params_.dictionary == DictionaryPolicy::two_hop ? n : 1;
    require(file_->offsets().size() == rows + 1, "Codebook: codebook file row count mismatch");
    offsets_ = file_->offsets();
    entries_ = file_->entries();
}

std::size_t Codebook::memory_bytes() const {
    const std::size_t n = graph_.node_count();
    const std::size_t decoys = params_.decoy_count;
    const std::size_t entry_count = n + 1 + decoys;
    const std::size_t beep_bytes = (combined_->length() + 7) / 8;
    const std::size_t dist_len = params_.distance_code_length();
    const std::size_t dist_bytes = (dist_len + 7) / 8;
    const std::size_t payload_bytes = (params_.payload_bits() + 7) / 8;

    std::size_t bytes = sizeof(Codebook);
    // The candidate index (the only large per-transport state). Counted the
    // same whether owned or mmap-borrowed, so a cache entry's charge does
    // not depend on how it was constructed.
    bytes += entries_.size() * sizeof(std::uint32_t) +
             offsets_.size() * sizeof(std::uint64_t);
    // One cached Round of derived material. Codewords of C carry exactly
    // dist_len ones (the combined-code weight contract), which sizes the
    // one_positions lists.
    bytes += (n + decoys) * (beep_bytes + dist_len * sizeof(std::size_t));  // codewords + ones
    bytes += entry_count * (2 * payload_bytes + dist_bytes);  // messages, tails, encodings
    bytes += n * beep_bytes;                                  // combined_schedules
    if (params_.dictionary == DictionaryPolicy::all_nodes) {
        // Bitslice matrix (beep_length planes over n+decoys columns), the
        // word-major SoA mirror of candidate_encoded, and the decode gaps.
        bytes += combined_->length() * ((n + decoys + 63) / 64) * sizeof(std::uint64_t);
        bytes += entry_count * dist_bytes;
        bytes += entry_count * sizeof(std::uint32_t);
    }
    return bytes;
}

std::span<const std::uint32_t> Codebook::candidate_entries(NodeId v) const {
    require(v < graph_.node_count(), "Codebook::candidate_entries: node out of range");
    return candidate_row(params_.dictionary == DictionaryPolicy::two_hop ? v : 0);
}

std::size_t Codebook::node_candidate_count(NodeId v) const {
    return candidate_entries(v).size() - 1 - params_.decoy_count;
}

std::shared_ptr<const Codebook::Round> Codebook::round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t nonce) const {
    std::shared_ptr<const Round> prev;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cached_ != nullptr && cached_->nonce == nonce && cached_->messages == messages) {
            return cached_;
        }
        prev = cached_;
    }
    // A same-nonce donor lets the rebuild copy everything the message edit
    // did not touch: the previous round of this codebook first, else the
    // delta base's round (captured only when the code geometry matches).
    std::shared_ptr<const Round> donor;
    if (prev != nullptr && prev->nonce == nonce) {
        donor = std::move(prev);
    } else if (donor_round_ != nullptr && donor_round_->nonce == nonce) {
        donor = donor_round_;
    }
    // Build outside the lock: rebuilds are the expensive path and concurrent
    // callers with distinct keys must not serialize on each other.
    BuildTally tally;
    std::shared_ptr<const Round> fresh = build_round(messages, nonce, std::move(donor), tally);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cached_ = fresh;
        ++stats_.round_builds;
        stats_.codeword_builds += tally.codewords_generated;
        stats_.payload_encodes += tally.encodes_generated;
        stats_.codeword_reuses += tally.codewords_reused;
        stats_.payload_encode_reuses += tally.encodes_reused;
    }
    return fresh;
}

std::shared_ptr<Codebook::Round> Codebook::build_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t nonce,
    std::shared_ptr<const Round> donor_round, BuildTally& tally) const {
    const std::size_t n = graph_.node_count();
    require(messages.size() == n, "Codebook: one message slot per node");

    // Donor contract (round() guarantees it): same transport_seed, nonce,
    // decoy params, and beep-code geometry. Everything copied below is a
    // pure function of those plus the entry id — or of that entry's
    // unchanged message — so each copy equals the value a fresh derivation
    // would produce, bit for bit. Entries past the donor's node count are
    // generated fresh.
    const Round* donor = donor_round.get();
    const std::size_t donor_n = donor != nullptr ? donor->inputs.size() : 0;
    const auto donor_message_equal = [&](std::size_t v) {
        return donor != nullptr && v < donor_n && messages[v] == donor->messages[v];
    };

    auto round = std::make_shared<Round>();
    round->nonce = nonce;
    round->rng = Rng(params_.transport_seed).derive(0x726f756eu, nonce);

    const std::size_t payload_bits = params_.payload_bits();
    const BeepCode& beep = beep_code();
    const DistanceCode& distance = distance_code();

    // Sharded builds derive per-node state for the owned local range only
    // (halo slots stay empty; the transport imports them from the boundary
    // table), and always by *global* id — the derivation an unsharded build
    // would use for the same node. (A sharded round's donor is always the
    // previous round of the same codebook, so the ranges line up.)
    const std::size_t owned_lo = view_.has_value() ? view_->owned_begin : 0;
    const std::size_t owned_hi =
        view_.has_value() ? owned_lo + view_->owned_count : n;
    const auto global_id = [this](NodeId v) -> std::uint64_t {
        return view_.has_value() ? view_->global_ids[v] : v;
    };

    // Per-node payloads and fresh inputs r_v.
    round->inputs.resize(n);
    round->payloads.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        round->payloads.push_back(donor_message_equal(v)
                                      ? donor->payloads[v]
                                      : make_payload(messages[v], params_.message_bits));
    }
    for (std::size_t v = owned_lo; v < owned_hi; ++v) {
        round->inputs[v] =
            donor != nullptr && v < donor_n
                ? donor->inputs[v]
                : round->rng.derive(0x7069636bu, global_id(static_cast<NodeId>(v))).next_u64();
    }

    // Decoys: inputs and payloads drawn independently of everything heard —
    // a function of the nonce alone, so any donor serves them whole.
    std::vector<Bitstring> decoy_payloads;
    round->decoy_inputs.resize(params_.decoy_count);
    decoy_payloads.reserve(params_.decoy_count);
    if (donor != nullptr) {
        round->decoy_inputs = donor->decoy_inputs;
        for (std::size_t i = 0; i < params_.decoy_count; ++i) {
            decoy_payloads.push_back(donor->candidate_messages[donor_n + 1 + i]);
        }
    } else {
        for (std::size_t i = 0; i < params_.decoy_count; ++i) {
            Rng decoy_rng = round->rng.derive(0x6465636fu, i);
            round->decoy_inputs[i] = decoy_rng.next_u64();
            decoy_payloads.push_back(Bitstring::random(decoy_rng, payload_bits));
        }
    }

    // Codewords C(r) with their 1-positions, for nodes and decoys alike —
    // functions of (nonce, id), so a same-nonce donor serves every common id.
    round->codewords.resize(n);
    round->one_positions.resize(n);
    for (std::size_t v = owned_lo; v < owned_hi; ++v) {
        if (donor != nullptr && v < donor_n) {
            round->codewords[v] = donor->codewords[v];
            round->one_positions[v] = donor->one_positions[v];
            ++tally.codewords_reused;
        } else {
            auto [codeword, positions] = beep.codeword_and_positions(round->inputs[v]);
            round->codewords[v] = std::move(codeword);
            round->one_positions[v] = std::move(positions);
            ++tally.codewords_generated;
        }
    }
    if (donor != nullptr) {
        round->decoy_codewords = donor->decoy_codewords;
        round->decoy_one_positions = donor->decoy_one_positions;
        tally.codewords_reused += params_.decoy_count;
    } else {
        round->decoy_codewords.reserve(params_.decoy_count);
        round->decoy_one_positions.reserve(params_.decoy_count);
        for (const auto r : round->decoy_inputs) {
            auto [codeword, positions] = beep.codeword_and_positions(r);
            round->decoy_codewords.push_back(std::move(codeword));
            round->decoy_one_positions.push_back(std::move(positions));
        }
        tally.codewords_generated += params_.decoy_count;
    }

    // Phase-2 candidate dictionary over the entry space, encoded once. Donor
    // entries: a node entry is reusable iff its message is unchanged; the
    // null + decoy tail block is message-independent and maps to the donor's
    // tail block whatever its node count.
    const std::size_t entry_count = n + 1 + params_.decoy_count;
    round->candidate_messages.reserve(entry_count);
    for (NodeId v = 0; v < n; ++v) {
        round->candidate_messages.push_back(round->payloads[v]);
    }
    round->candidate_messages.push_back(Bitstring(payload_bits));  // the null payload
    for (auto& decoy : decoy_payloads) {
        round->candidate_messages.push_back(std::move(decoy));
    }
    const auto donor_entry = [&](std::size_t e) -> std::ptrdiff_t {
        if (e < n) {
            return donor_message_equal(e) ? static_cast<std::ptrdiff_t>(e) : -1;
        }
        return donor != nullptr ? static_cast<std::ptrdiff_t>(donor_n + (e - n)) : -1;
    };
    std::vector<std::size_t> regenerated_entries;  // columns the SoA patch rewrites
    round->candidate_encoded.reserve(entry_count);
    round->candidate_tails.reserve(entry_count);
    for (std::size_t e = 0; e < entry_count; ++e) {
        const std::ptrdiff_t d = donor_entry(e);
        if (d >= 0) {
            round->candidate_encoded.push_back(donor->candidate_encoded[static_cast<std::size_t>(d)]);
            round->candidate_tails.push_back(donor->candidate_tails[static_cast<std::size_t>(d)]);
            ++tally.encodes_reused;
        } else {
            const Bitstring& candidate = round->candidate_messages[e];
            round->candidate_encoded.push_back(distance.encode(candidate));
            round->candidate_tails.push_back(candidate.tail(1));
            ++tally.encodes_generated;
            regenerated_entries.push_back(e);
        }
    }

    // Bitsliced phase-1 matrix and phase-2 decode radii: only the all_nodes
    // policy scans dictionaries large enough to amortize them (see the
    // header comment on Round). The matrix is built only from
    // bitslice_min_candidates candidates up — below the crossover the
    // transport's scalar early-exit loop wins and the transpose would be
    // waste. The O(n^2) node-payload gap block is messages-keyed in
    // node_gaps_, so a fixed-messages nonce sweep recomputes only the
    // decoy rows each round.
    if (params_.dictionary == DictionaryPolicy::all_nodes) {
        if (n + params_.decoy_count >= params_.bitslice_min_candidates) {
            if (donor != nullptr && donor_n == n && !donor->codeword_slices.empty()) {
                // Same entry space, same nonce: the codeword planes are
                // bit-identical (copies share the scratch-bias epoch), and
                // the SoA dictionary needs only the regenerated columns
                // patched in place instead of a full re-transposition.
                round->codeword_slices = donor->codeword_slices;
                round->candidate_encoded_soa = donor->candidate_encoded_soa;
                for (const std::size_t e : regenerated_entries) {
                    round->candidate_encoded_soa.set_column(e, round->candidate_encoded[e]);
                }
            } else {
                round->codeword_slices =
                    BitsliceMatrix(round->codewords, round->decoy_codewords);
                // The phase-2 dictionary transposed word-major for the
                // vectorized full-sweep scan, gated with the bitslice matrix:
                // both pay off exactly when every node scans the whole entry
                // space (DistanceCode::nearest_entry_soa).
                round->candidate_encoded_soa.build(round->candidate_encoded);
            }
        }
        const std::span<const Bitstring> all_messages(round->candidate_messages);
        const std::span<const Bitstring> all_encoded(round->candidate_encoded);
        std::shared_ptr<const NodeGapCache> node_gaps;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto it = node_gaps_.begin(); it != node_gaps_.end(); ++it) {
                if ((*it)->messages == messages) {
                    node_gaps_.splice(node_gaps_.begin(), node_gaps_, it);
                    node_gaps = node_gaps_.front();
                    break;
                }
            }
        }
        if (node_gaps == nullptr) {
            auto fresh = std::make_shared<NodeGapCache>();
            fresh->messages = messages;
            fresh->gaps = distance.decode_gaps(all_messages.first(n + 1),
                                               all_encoded.first(n + 1));
            node_gaps = fresh;
            std::lock_guard<std::mutex> lock(mutex_);
            // Re-check under the insertion lock: a concurrent same-messages
            // miss may have raced the build; inserting a duplicate would
            // waste a slot and compound into thrash under capacity pressure.
            bool already_cached = false;
            for (const auto& entry : node_gaps_) {
                if (entry->messages == messages) {
                    already_cached = true;
                    break;
                }
            }
            if (!already_cached) {
                node_gaps_.push_front(std::move(fresh));
                while (node_gaps_.size() > node_gap_capacity()) {
                    node_gaps_.pop_back();
                }
            }
        }
        round->decode_gaps =
            distance.extend_decode_gaps(all_messages, all_encoded, node_gaps->gaps);
    }

    // Fault-free phase-2 schedules CD(r_v, payload_v): D(payload_v) is
    // already in the dictionary, so only the scatter remains — and a donor
    // node with an unchanged message already scattered the identical pair.
    // Sharded energy totals count the owned nodes only — the transport sums
    // them across shards, each node counted by exactly its owner.
    round->combined_schedules.resize(n);
    for (std::size_t v = owned_lo; v < owned_hi; ++v) {
        if (donor_message_equal(v)) {
            round->combined_schedules[v] = donor->combined_schedules[v];
        } else {
            round->combined_schedules[v] = Bitstring::scatter(
                beep.length(), round->one_positions[v], round->candidate_encoded[v]);
        }
        round->phase2_beeps += round->combined_schedules[v].count();
    }
    round->phase1_beeps = (owned_hi - owned_lo) * beep.weight();

    round->messages = messages;
    return round;
}

std::size_t Codebook::node_gap_capacity() {
    // 2x hardware concurrency covers moderate worker oversubscription (the
    // sweep worker count is user-set, not capped at the core count); the
    // floor of 64 makes even heavy oversubscription cheap, since an entry
    // is a few KB while a thrashed recompute is O(n^2) distance decodes
    // per round.
    const std::size_t hardware = std::thread::hardware_concurrency();
    return std::max<std::size_t>(64, 2 * hardware);
}

std::uint64_t Codebook::fingerprint() const {
    std::uint64_t h = 0x66696e6765727072ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    if (view_.has_value()) {  // unsharded digests are unchanged by the view feature
        mix(0x73686172u);
        mix(view_->digest());
    }
    mix(graph_.node_count());
    mix(beep_length());
    mix(beep_code().weight());
    mix(distance_code().length());
    mix(params_.message_bits);
    mix(params_.decoy_count);
    mix(params_.transport_seed);
    mix(params_.bitslice_min_candidates);
    mix(static_cast<std::uint64_t>(params_.dictionary));
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
        const auto entries = candidate_entries(v);
        mix(entries.size());
        for (const auto e : entries) {
            mix(e);
        }
    }
    // Code content probes: codewords and encodings are pure functions of the
    // code seeds, so a few sampled inputs pin the codes bit for bit.
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto [codeword, positions] = beep_code().codeword_and_positions(mix64(i));
        mix(codeword.hash());
        mix(positions.size());
    }
    Rng probe(0x70726f6265u);
    for (int i = 0; i < 4; ++i) {
        mix(distance_code().encode(Bitstring::random(probe, params_.payload_bits())).hash());
    }
    return h;
}

Codebook::Stats Codebook::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace nb
