#include "sim/codebook.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/error.h"
#include "common/failpoint.h"

namespace nb {

namespace {

NB_FAILPOINT_DEFINE(fp_codebook_build, "codebook.build");

/// Pad/flag an optional algorithm message into a transport payload:
/// bit 0 = presence, bits 1..message_bits = the message (zero-padded).
Bitstring make_payload(const std::optional<Bitstring>& message, std::size_t message_bits) {
    Bitstring payload(message_bits + 1);
    if (message.has_value()) {
        require(message->size() <= message_bits,
                "BeepTransport: message exceeds the bit budget");
        payload.set(0);
        message->for_each_one([&payload](std::size_t i) { payload.set(1 + i); });
    }
    return payload;
}

}  // namespace

std::uint64_t Codebook::ShardView::digest() const {
    std::uint64_t h = 0x73686172645f7677ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(global_node_count);
    mix(global_max_degree);
    mix(owned_begin);
    mix(owned_count);
    mix(global_ids.size());
    for (const auto id : global_ids) {
        mix(id);
    }
    return h;
}

Codebook::Codebook(const Graph& graph, const SimulationParams& params)
    : Codebook(graph, params, std::nullopt) {}

Codebook::Codebook(const Graph& graph, const SimulationParams& params, ShardView view)
    : Codebook(graph, params, std::optional<ShardView>(std::move(view))) {}

Codebook::Codebook(const Graph& graph, const SimulationParams& params,
                   std::optional<ShardView> view)
    : graph_(graph),
      params_(params),
      view_(std::move(view)),
      combined_(BeepCode(params.beep_code_length(
                             view_.has_value()
                                 ? static_cast<std::size_t>(view_->global_max_degree)
                                 : graph.max_degree()),
                         params.distance_code_length(), params.code_seed),
                DistanceCode(params.payload_bits(), params.distance_code_length(),
                             mix64(params.code_seed ^ 0x64636f64u))) {
    fp_codebook_build.check();
    params_.validate();
    if (view_.has_value()) {
        require(params_.dictionary == DictionaryPolicy::two_hop,
                "Codebook: shard views require the two_hop dictionary");
        require(view_->global_ids.size() == graph_.node_count(),
                "Codebook: shard view must map every local node");
        require(view_->owned_begin + view_->owned_count <= graph_.node_count(),
                "Codebook: shard view owned range out of bounds");
    }
    stats_.code_builds = 1;

    const std::size_t n = graph_.node_count();
    const auto n32 = static_cast<std::uint32_t>(n);
    // Dictionary-order tail shared by every node: null payload, then decoys.
    std::vector<std::uint32_t> tail;
    tail.reserve(1 + params_.decoy_count);
    tail.push_back(n32);
    for (std::size_t i = 0; i < params_.decoy_count; ++i) {
        tail.push_back(n32 + 1 + static_cast<std::uint32_t>(i));
    }

    if (params_.dictionary == DictionaryPolicy::two_hop) {
        per_node_entries_.resize(n);
        for (NodeId v = 0; v < n; ++v) {
            std::unordered_set<NodeId> reachable;
            for (const auto u : graph_.neighbors(v)) {
                reachable.insert(u);
                for (const auto w : graph_.neighbors(u)) {
                    if (w != v) {
                        reachable.insert(w);
                    }
                }
            }
            auto& entries = per_node_entries_[v];
            entries.assign(reachable.begin(), reachable.end());
            std::sort(entries.begin(), entries.end());
            entries.insert(entries.end(), tail.begin(), tail.end());
        }
    } else {
        shared_entries_.reserve(n + tail.size());
        for (NodeId u = 0; u < n; ++u) {
            shared_entries_.push_back(u);
        }
        shared_entries_.insert(shared_entries_.end(), tail.begin(), tail.end());
    }
}

std::size_t Codebook::memory_bytes() const {
    const std::size_t n = graph_.node_count();
    const std::size_t decoys = params_.decoy_count;
    const std::size_t entry_count = n + 1 + decoys;
    const std::size_t beep_bytes = (combined_.length() + 7) / 8;
    const std::size_t dist_len = params_.distance_code_length();
    const std::size_t dist_bytes = (dist_len + 7) / 8;
    const std::size_t payload_bytes = (params_.payload_bits() + 7) / 8;

    std::size_t bytes = sizeof(Codebook);
    // Candidate entry lists (the only large per-transport state).
    if (params_.dictionary == DictionaryPolicy::two_hop) {
        for (const auto& entries : per_node_entries_) {
            bytes += entries.size() * sizeof(std::uint32_t) + sizeof(entries);
        }
    } else {
        bytes += shared_entries_.size() * sizeof(std::uint32_t);
    }
    // One cached Round of derived material. Codewords of C carry exactly
    // dist_len ones (the combined-code weight contract), which sizes the
    // one_positions lists.
    bytes += (n + decoys) * (beep_bytes + dist_len * sizeof(std::size_t));  // codewords + ones
    bytes += entry_count * (2 * payload_bytes + dist_bytes);  // messages, tails, encodings
    bytes += n * beep_bytes;                                  // combined_schedules
    if (params_.dictionary == DictionaryPolicy::all_nodes) {
        // Bitslice matrix (beep_length planes over n+decoys columns), the
        // word-major SoA mirror of candidate_encoded, and the decode gaps.
        bytes += combined_.length() * ((n + decoys + 63) / 64) * sizeof(std::uint64_t);
        bytes += entry_count * dist_bytes;
        bytes += entry_count * sizeof(std::uint32_t);
    }
    return bytes;
}

std::span<const std::uint32_t> Codebook::candidate_entries(NodeId v) const {
    require(v < graph_.node_count(), "Codebook::candidate_entries: node out of range");
    if (params_.dictionary == DictionaryPolicy::two_hop) {
        return per_node_entries_[v];
    }
    return shared_entries_;
}

std::size_t Codebook::node_candidate_count(NodeId v) const {
    return candidate_entries(v).size() - 1 - params_.decoy_count;
}

std::shared_ptr<const Codebook::Round> Codebook::round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t nonce) const {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cached_ != nullptr && cached_->nonce == nonce && cached_->messages == messages) {
            return cached_;
        }
    }
    // Build outside the lock: rebuilds are the expensive path and concurrent
    // callers with distinct keys must not serialize on each other.
    std::shared_ptr<const Round> fresh = build_round(messages, nonce);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cached_ = fresh;
        ++stats_.round_builds;
        stats_.codeword_builds += fresh->codewords.size() + fresh->decoy_codewords.size();
        stats_.payload_encodes += fresh->candidate_encoded.size();
    }
    return fresh;
}

std::shared_ptr<Codebook::Round> Codebook::build_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t nonce) const {
    const std::size_t n = graph_.node_count();
    require(messages.size() == n, "Codebook: one message slot per node");

    auto round = std::make_shared<Round>();
    round->nonce = nonce;
    round->rng = Rng(params_.transport_seed).derive(0x726f756eu, nonce);

    const std::size_t payload_bits = params_.payload_bits();
    const BeepCode& beep = beep_code();
    const DistanceCode& distance = distance_code();

    // Sharded builds derive per-node state for the owned local range only
    // (halo slots stay empty; the transport imports them from the boundary
    // table), and always by *global* id — the derivation an unsharded build
    // would use for the same node.
    const std::size_t owned_lo = view_.has_value() ? view_->owned_begin : 0;
    const std::size_t owned_hi =
        view_.has_value() ? owned_lo + view_->owned_count : n;
    const auto global_id = [this](NodeId v) -> std::uint64_t {
        return view_.has_value() ? view_->global_ids[v] : v;
    };

    // Per-node payloads and fresh inputs r_v.
    round->inputs.resize(n);
    round->payloads.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        round->payloads.push_back(make_payload(messages[v], params_.message_bits));
    }
    for (std::size_t v = owned_lo; v < owned_hi; ++v) {
        round->inputs[v] =
            round->rng.derive(0x7069636bu, global_id(static_cast<NodeId>(v))).next_u64();
    }

    // Decoys: inputs and payloads drawn independently of everything heard.
    std::vector<Bitstring> decoy_payloads;
    round->decoy_inputs.resize(params_.decoy_count);
    decoy_payloads.reserve(params_.decoy_count);
    for (std::size_t i = 0; i < params_.decoy_count; ++i) {
        Rng decoy_rng = round->rng.derive(0x6465636fu, i);
        round->decoy_inputs[i] = decoy_rng.next_u64();
        decoy_payloads.push_back(Bitstring::random(decoy_rng, payload_bits));
    }

    // Codewords C(r) with their 1-positions, for nodes and decoys alike,
    // each pair generated in one PRNG pass.
    round->codewords.resize(n);
    round->one_positions.resize(n);
    for (std::size_t v = owned_lo; v < owned_hi; ++v) {
        auto [codeword, positions] = beep.codeword_and_positions(round->inputs[v]);
        round->codewords[v] = std::move(codeword);
        round->one_positions[v] = std::move(positions);
    }
    round->decoy_codewords.reserve(params_.decoy_count);
    round->decoy_one_positions.reserve(params_.decoy_count);
    for (const auto r : round->decoy_inputs) {
        auto [codeword, positions] = beep.codeword_and_positions(r);
        round->decoy_codewords.push_back(std::move(codeword));
        round->decoy_one_positions.push_back(std::move(positions));
    }

    // Phase-2 candidate dictionary over the entry space, encoded once.
    round->candidate_messages.reserve(n + 1 + params_.decoy_count);
    for (NodeId v = 0; v < n; ++v) {
        round->candidate_messages.push_back(round->payloads[v]);
    }
    round->candidate_messages.push_back(Bitstring(payload_bits));  // the null payload
    for (auto& decoy : decoy_payloads) {
        round->candidate_messages.push_back(std::move(decoy));
    }
    round->candidate_encoded.reserve(round->candidate_messages.size());
    round->candidate_tails.reserve(round->candidate_messages.size());
    for (const auto& candidate : round->candidate_messages) {
        round->candidate_encoded.push_back(distance.encode(candidate));
        round->candidate_tails.push_back(candidate.tail(1));
    }

    // Bitsliced phase-1 matrix and phase-2 decode radii: only the all_nodes
    // policy scans dictionaries large enough to amortize them (see the
    // header comment on Round). The matrix is built only from
    // bitslice_min_candidates candidates up — below the crossover the
    // transport's scalar early-exit loop wins and the transpose would be
    // waste. The O(n^2) node-payload gap block is messages-keyed in
    // node_gaps_, so a fixed-messages nonce sweep recomputes only the
    // decoy rows each round.
    if (params_.dictionary == DictionaryPolicy::all_nodes) {
        if (n + params_.decoy_count >= params_.bitslice_min_candidates) {
            round->codeword_slices = BitsliceMatrix(round->codewords, round->decoy_codewords);
            // The phase-2 dictionary transposed word-major for the
            // vectorized full-sweep scan, gated with the bitslice matrix:
            // both pay off exactly when every node scans the whole entry
            // space (DistanceCode::nearest_entry_soa).
            round->candidate_encoded_soa.build(round->candidate_encoded);
        }
        const std::span<const Bitstring> all_messages(round->candidate_messages);
        const std::span<const Bitstring> all_encoded(round->candidate_encoded);
        std::shared_ptr<const NodeGapCache> node_gaps;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto it = node_gaps_.begin(); it != node_gaps_.end(); ++it) {
                if ((*it)->messages == messages) {
                    node_gaps_.splice(node_gaps_.begin(), node_gaps_, it);
                    node_gaps = node_gaps_.front();
                    break;
                }
            }
        }
        if (node_gaps == nullptr) {
            auto fresh = std::make_shared<NodeGapCache>();
            fresh->messages = messages;
            fresh->gaps = distance.decode_gaps(all_messages.first(n + 1),
                                               all_encoded.first(n + 1));
            node_gaps = fresh;
            std::lock_guard<std::mutex> lock(mutex_);
            // Re-check under the insertion lock: a concurrent same-messages
            // miss may have raced the build; inserting a duplicate would
            // waste a slot and compound into thrash under capacity pressure.
            bool already_cached = false;
            for (const auto& entry : node_gaps_) {
                if (entry->messages == messages) {
                    already_cached = true;
                    break;
                }
            }
            if (!already_cached) {
                node_gaps_.push_front(std::move(fresh));
                while (node_gaps_.size() > node_gap_capacity()) {
                    node_gaps_.pop_back();
                }
            }
        }
        round->decode_gaps =
            distance.extend_decode_gaps(all_messages, all_encoded, node_gaps->gaps);
    }

    // Fault-free phase-2 schedules CD(r_v, payload_v): D(payload_v) is
    // already in the dictionary, so only the scatter remains. Sharded energy
    // totals count the owned nodes only — the transport sums them across
    // shards, each node counted by exactly its owner.
    round->combined_schedules.resize(n);
    for (std::size_t v = owned_lo; v < owned_hi; ++v) {
        round->combined_schedules[v] = Bitstring::scatter(
            beep.length(), round->one_positions[v], round->candidate_encoded[v]);
        round->phase2_beeps += round->combined_schedules[v].count();
    }
    round->phase1_beeps = (owned_hi - owned_lo) * beep.weight();

    round->messages = messages;
    return round;
}

std::size_t Codebook::node_gap_capacity() {
    // 2x hardware concurrency covers moderate worker oversubscription (the
    // sweep worker count is user-set, not capped at the core count); the
    // floor of 64 makes even heavy oversubscription cheap, since an entry
    // is a few KB while a thrashed recompute is O(n^2) distance decodes
    // per round.
    const std::size_t hardware = std::thread::hardware_concurrency();
    return std::max<std::size_t>(64, 2 * hardware);
}

std::uint64_t Codebook::fingerprint() const {
    std::uint64_t h = 0x66696e6765727072ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    if (view_.has_value()) {  // unsharded digests are unchanged by the view feature
        mix(0x73686172u);
        mix(view_->digest());
    }
    mix(graph_.node_count());
    mix(beep_length());
    mix(beep_code().weight());
    mix(distance_code().length());
    mix(params_.message_bits);
    mix(params_.decoy_count);
    mix(params_.transport_seed);
    mix(params_.bitslice_min_candidates);
    mix(static_cast<std::uint64_t>(params_.dictionary));
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
        const auto entries = candidate_entries(v);
        mix(entries.size());
        for (const auto e : entries) {
            mix(e);
        }
    }
    // Code content probes: codewords and encodings are pure functions of the
    // code seeds, so a few sampled inputs pin the codes bit for bit.
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto [codeword, positions] = beep_code().codeword_and_positions(mix64(i));
        mix(codeword.hash());
        mix(positions.size());
    }
    Rng probe(0x70726f6265u);
    for (int i = 0; i < 4; ++i) {
        mix(distance_code().encode(Bitstring::random(probe, params_.payload_bits())).hash());
    }
    return h;
}

Codebook::Stats Codebook::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace nb
