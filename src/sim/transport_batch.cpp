#include "sim/transport_batch.h"

#include <cstring>

#include "common/error.h"
#include "sim/transport.h"

namespace nb {

namespace {

/// message_less for two equal-size records: compare packed words from the
/// most significant down (sizes are equal by construction — one message
/// size per transport — so the size comparison in message_less never
/// fires).
bool record_less(const std::uint64_t* a, const std::uint64_t* b, std::size_t words) noexcept {
    for (std::size_t i = words; i-- > 0;) {
        if (a[i] != b[i]) {
            return a[i] < b[i];
        }
    }
    return false;
}

}  // namespace

TransportBatch::TransportBatch() = default;
TransportBatch::~TransportBatch() = default;
TransportBatch::TransportBatch(TransportBatch&&) noexcept = default;
TransportBatch& TransportBatch::operator=(TransportBatch&&) noexcept = default;

void TransportBatch::prepare(std::size_t rounds, std::size_t nodes, std::size_t message_bits,
                             std::size_t workers) {
    rounds_ = rounds;
    nodes_ = nodes;
    message_bits_ = message_bits;
    stride_ = (message_bits + 63) / 64;
    // assign() reuses capacity: steady-state batches of the same shape touch
    // no allocator here.
    slots_.assign(rounds * nodes, Slot{});
    stats_.assign(rounds, TransportRoundStats{});
    if (arenas_.size() < workers) {
        arenas_.resize(workers);
        arena_used_.resize(workers);
    }
    for (auto& used : arena_used_) {
        used = 0;
    }
}

std::uint64_t TransportBatch::push_record(std::size_t worker) {
    AlignedWords& arena = arenas_[worker];
    std::size_t& used = arena_used_[worker];
    if (used + stride_ > arena.size()) {
        // Geometric growth to a per-batch high-water mark; later batches of
        // the same workload never grow again.
        arena.resize(std::max<std::size_t>({arena.size() * 2, used + stride_, 64}), 0);
    }
    const std::uint64_t offset = used;
    used += stride_;
    return offset;
}

void TransportBatch::commit_node(std::size_t round, NodeId v, std::size_t worker,
                                 std::uint64_t start, std::uint32_t count,
                                 std::vector<std::uint64_t>& tmp) {
    // Insertion sort over the run's fixed-stride records: deliveries per
    // node are O(degree), and the sort must impose exactly sort_messages'
    // order so ring results mirror simulate_rounds bit for bit.
    if (count > 1) {
        tmp.resize(stride_);
        std::uint64_t* base = record_at(worker, start);
        for (std::uint32_t i = 1; i < count; ++i) {
            std::uint64_t* record = base + i * stride_;
            std::uint32_t j = i;
            if (!record_less(record, record - stride_, stride_)) {
                continue;
            }
            std::memcpy(tmp.data(), record, stride_ * sizeof(std::uint64_t));
            while (j > 0 && record_less(tmp.data(), base + (j - 1) * stride_, stride_)) {
                std::memcpy(base + j * stride_, base + (j - 1) * stride_,
                            stride_ * sizeof(std::uint64_t));
                --j;
            }
            std::memcpy(base + j * stride_, tmp.data(), stride_ * sizeof(std::uint64_t));
        }
    }
    Slot& slot = slots_[round * nodes_ + v];
    slot.worker = static_cast<std::uint32_t>(worker);
    slot.offset = start;
    slot.count = count;
}

const TransportRoundStats& TransportBatch::stats(std::size_t round) const {
    require(round < rounds_, "TransportBatch::stats: round out of range");
    return stats_[round];
}

std::size_t TransportBatch::delivered_count(std::size_t round, NodeId v) const {
    require(round < rounds_ && v < nodes_,
            "TransportBatch::delivered_count: index out of range");
    return slots_[round * nodes_ + v].count;
}

std::span<const std::uint64_t> TransportBatch::delivered_words(std::size_t round, NodeId v,
                                                               std::size_t i) const {
    require(round < rounds_ && v < nodes_,
            "TransportBatch::delivered_words: index out of range");
    const Slot& slot = slots_[round * nodes_ + v];
    require(i < slot.count, "TransportBatch::delivered_words: record out of range");
    return {record_at(slot.worker, slot.offset + i * stride_), stride_};
}

Bitstring TransportBatch::delivered_message(std::size_t round, NodeId v, std::size_t i) const {
    return Bitstring::from_words(delivered_words(round, v, i), message_bits_);
}

TransportRound TransportBatch::to_round(std::size_t round) const {
    const TransportRoundStats& s = stats(round);
    TransportRound result;
    result.beep_rounds = s.beep_rounds;
    result.total_beeps = s.total_beeps;
    result.phase1_false_negatives = s.phase1_false_negatives;
    result.phase1_false_positives = s.phase1_false_positives;
    result.phase2_errors = s.phase2_errors;
    result.delivery_mismatches = s.delivery_mismatches;
    result.perfect = s.perfect;
    result.delivered.resize(nodes_);
    for (NodeId v = 0; v < nodes_; ++v) {
        const std::size_t count = delivered_count(round, v);
        result.delivered[v].reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            result.delivered[v].push_back(delivered_message(round, v, i));
        }
    }
    return result;
}

std::size_t TransportBatch::arena_words() const noexcept {
    std::size_t total = 0;
    for (const auto& arena : arenas_) {
        total += arena.size();
    }
    return total;
}

}  // namespace nb
