// nb-codebook/v1: the serialized, checksummed, mmap-able candidate index.
//
// The expensive part of a Codebook is the candidate dictionary (the two-hop
// sets are O(sum deg^2) to compute); the code triple is procedural — seeds
// and dimensions — and per-round state is derived on demand. So the format
// persists exactly the candidate index, as the same flat CSR the in-memory
// codebook uses, and a load is an mmap plus one checksum pass: the Codebook
// borrows the offsets/entries spans in place, no parse, no copy.
//
// File layout (little-endian hosts; the only platforms this project runs on):
//
//   {"schema":"nb-codebook/v1", ...identity..., "checksum":<fnv1a-64>}<pad>\n
//   <offsets: (rows+1) x u64><entries: entry_count x u32>
//
// One JSON header line, space-padded so the binary payload starts on an
// 8-byte boundary (mmap bases are page-aligned, so the offsets array is
// naturally aligned in place). The identity block pins everything a
// CodebookCache key pins — the 128-bit graph digest pair, the shard-view
// digest, and the codebook-relevant params — plus the builder's fingerprint,
// so a file can never adopt into a codebook it was not built for.
//
// Durability follows the ArtifactStore discipline (DESIGN.md section 11):
// write `<path>.tmp` fully, fflush + fsync, atomic rename, fsync the
// directory; a torn or truncated file fails the structural/checksum checks
// in map() and is simply not loadable — the caller rebuilds and overwrites.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "sim/codebook.h"

namespace nb {

/// A validated, mapped nb-codebook/v1 file. Obtained via map(); the mapping
/// lives until the last shared_ptr (Codebooks built from it keep one) dies.
class CodebookFile {
public:
    struct Header {
        std::uint64_t node_count = 0;
        std::uint64_t max_degree = 0;  ///< the degree that sized the beep code
        std::uint64_t graph_digest = 0;
        std::uint64_t graph_digest2 = 0;
        std::uint64_t shard_digest = 0;  ///< ShardView::digest(); 0 unsharded
        std::uint64_t message_bits = 0;
        std::uint64_t c_eps = 0;
        std::uint64_t code_seed = 0;
        std::uint64_t transport_seed = 0;
        std::uint64_t decoy_count = 0;
        std::uint64_t bitslice_min_candidates = 0;
        std::uint32_t dictionary = 0;    ///< DictionaryPolicy as its integer value
        std::uint64_t fingerprint = 0;   ///< Codebook::fingerprint() of the builder
    };

    /// Map and validate `path`. Returns nullptr — never a partially valid
    /// object — if the file is missing, torn, truncated, checksum-corrupt,
    /// or structurally inconsistent (non-monotone offsets, out-of-range
    /// entry ids, misaligned header). When `error` is non-null it receives
    /// the reason for a nullptr return.
    static std::shared_ptr<const CodebookFile> map(const std::string& path,
                                                   std::string* error = nullptr);

    ~CodebookFile();
    CodebookFile(const CodebookFile&) = delete;
    CodebookFile& operator=(const CodebookFile&) = delete;

    const Header& header() const noexcept { return header_; }
    std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
    std::span<const std::uint32_t> entries() const noexcept { return entries_; }
    std::size_t mapped_bytes() const noexcept { return size_; }

private:
    CodebookFile() = default;

    void* base_ = nullptr;
    std::size_t size_ = 0;
    Header header_;
    std::span<const std::uint64_t> offsets_;
    std::span<const std::uint32_t> entries_;
};

/// Serialize `codebook`'s candidate index to `path` with the write-temp +
/// fsync + atomic-rename discipline. Throws precondition_error on I/O
/// failure (the temp file is cleaned up); an existing file at `path` is
/// atomically replaced.
void save_codebook(const Codebook& codebook, const std::string& path);

}  // namespace nb
