#include "sim/sharded_transport.h"

#include <algorithm>
#include <cstring>

#include "beep/batch_engine.h"
#include "common/cancel.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "sim/decode_core.h"

namespace nb {

// Armed by the resilience tests and NB_FAILPOINTS: fires on the coordinator
// thread once per round, between the shards' boundary publishes and their
// imports — the seam where a real distributed implementation would hit the
// network. The sweep engine classifies the injected fault as transient and
// retries the whole scenario (DESIGN.md section 9).
NB_FAILPOINT_DEFINE(fp_shard_exchange, "shard.exchange");

namespace {

using transport_detail::DecodeContext;
using transport_detail::NodeDiagnostics;
using transport_detail::NodeState;
using transport_detail::build_node_states_into;

/// Per-shard per-round scratch, reused across rounds and batches (lives in
/// the batch's Scratch::extension, so it reaches steady-state size once).
struct ShardRoundScratch {
    std::vector<std::optional<Bitstring>> messages;  ///< local slice, closure order
    std::shared_ptr<const Codebook::Round> round;
    // The complete local fault-free dictionary: owned slots copied from the
    // round, halo slots imported from the boundary table.
    std::vector<Bitstring> codewords;
    std::vector<std::vector<std::size_t>> one_positions;
    std::vector<Bitstring> phase2;
    std::vector<Bitstring> faulty_phase1;
    std::vector<Bitstring> faulty_phase2;
    std::vector<NodeState> states;
    std::vector<NodeDiagnostics> diagnostics;
    std::size_t total_beeps = 0;  ///< owned nodes only
};

/// The boundary table plus every shard's scratch. One writer per table row
/// (the owning shard's stage-A task); readers only start after the exchange
/// barrier between stages, so no row is ever concurrently written and read.
struct ShardBatchScratch {
    std::vector<std::uint64_t> table;
    std::vector<ShardRoundScratch> shards;
};

/// Local index of global id `g` in the sorted closure, or ln if absent.
std::size_t local_index_of(const std::vector<std::uint32_t>& local_to_global, NodeId g) {
    const auto it =
        std::lower_bound(local_to_global.begin(), local_to_global.end(), g);
    if (it != local_to_global.end() && *it == g) {
        return static_cast<std::size_t>(it - local_to_global.begin());
    }
    return local_to_global.size();
}

}  // namespace

ShardedTransport::ShardedTransport(const Graph& graph, SimulationParams params,
                                   std::size_t shard_count)
    : graph_(graph), params_(params) {
    params_.validate();
    if (params_.dictionary != DictionaryPolicy::two_hop) {
        // all_nodes decoders scan every node's input, so no shard closure is
        // self-contained; the unsharded transport is the correct engine.
        fallback_ = std::make_unique<BeepTransport>(graph_, params_);
        return;
    }
    plan_ = make_shard_plan(graph_, shard_count);
    const std::size_t k = plan_.shard_count();
    const std::uint64_t delta = graph_.max_degree();
    shards_.resize(k);
    for (std::size_t s = 0; s < k; ++s) {
        const ShardPlan::Shard& sh = plan_.shards[s];
        Codebook::ShardView view;
        view.global_ids = sh.local_to_global;
        view.owned_begin = sh.owned_begin;
        view.owned_count = sh.owned_count;
        view.global_node_count = graph_.node_count();
        view.global_max_degree = delta;
        if (params_.shared_codebook) {
            shards_[s].shared = CodebookCache::instance().acquire(sh.local, params_, view);
            shards_[s].codebook = &shards_[s].shared->codebook();
        } else {
            shards_[s].owned =
                std::make_unique<Codebook>(sh.local, params_, std::move(view));
            shards_[s].codebook = shards_[s].owned.get();
        }
    }
    beep_length_ = shards_.front().codebook->beep_length();
    words_per_schedule_ = (beep_length_ + 63) / 64;
    row_offset_words_.resize(k);
    std::size_t offset = 0;
    for (std::size_t s = 0; s < k; ++s) {
        row_offset_words_[s] = offset;
        offset += plan_.shards[s].exports.size() * 2 * words_per_schedule_;
    }
    table_words_ = offset;
    pool_ = std::make_unique<ThreadPool>(ThreadPool::worker_count_for(params_.threads, k));
}

std::size_t ShardedTransport::rounds_per_broadcast_round() const {
    if (fallback_ != nullptr) {
        return fallback_->rounds_per_broadcast_round();
    }
    return params_.rounds_per_broadcast_round(graph_.max_degree());
}

TransportRound ShardedTransport::simulate_round(
    const std::vector<std::optional<Bitstring>>& messages, std::uint64_t round_nonce,
    const FaultModel& faults) const {
    const RoundSpec spec{&messages, round_nonce, &faults};
    return std::move(simulate_rounds({&spec, 1}).front());
}

std::vector<TransportRound> ShardedTransport::simulate_rounds(
    std::span<const RoundSpec> specs) const {
    TransportBatch batch;
    simulate_rounds_into(specs, batch);
    std::vector<TransportRound> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results.push_back(batch.to_round(i));
    }
    return results;
}

void ShardedTransport::simulate_rounds_into(std::span<const RoundSpec> specs,
                                            TransportBatch& batch) const {
    if (fallback_ != nullptr) {
        fallback_->simulate_rounds_into(specs, batch);
        return;
    }
    const std::size_t n = graph_.node_count();
    for (const auto& spec : specs) {
        require(spec.messages != nullptr, "ShardedTransport::simulate_rounds: null messages");
        require(spec.messages->size() == n, "ShardedTransport: one message slot per node");
    }

    if (batch.scratch_ == nullptr) {
        batch.scratch_ = std::make_shared<TransportBatch::Scratch>();
    }
    batch.prepare(specs.size(), n, params_.message_bits, pool_->worker_count());
    if (batch.scratch_->workspaces.size() < pool_->worker_count()) {
        batch.scratch_->workspaces.resize(pool_->worker_count());
    }
    if (specs.empty()) {
        return;
    }
    for (const auto& spec : specs) {
        if (spec.faults != nullptr) {
            // Fail fast on bad fault ids before any decoding starts — same
            // global validation (and error text) as the unsharded transport.
            build_node_states_into(batch.scratch_->states, n, *spec.faults);
        }
    }
    decode_rounds(specs, batch);
}

void ShardedTransport::decode_rounds(std::span<const RoundSpec> specs,
                                     TransportBatch& batch) const {
    TransportBatch::Scratch& scratch = *batch.scratch_;
    const std::size_t k = plan_.shard_count();

    auto ext = std::static_pointer_cast<ShardBatchScratch>(scratch.extension);
    if (ext == nullptr || ext->shards.size() != k) {
        ext = std::make_shared<ShardBatchScratch>();
        ext->shards.resize(k);
        scratch.extension = ext;
    }
    ext->table.resize(table_words_);

    const std::size_t b = beep_length_;
    const std::size_t wb = words_per_schedule_;
    static const FaultModel no_faults{};
    // Resolved once per batch: what params_.simd_kernel actually runs as.
    const simd::Kernel kernel = simd::resolve_kernel(params_.simd_kernel);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        // Round boundary: cancellation (sweep watchdogs) unwinds here, same
        // as the unsharded transport.
        cancel_poll();
        const RoundSpec& spec = specs[i];
        const FaultModel& faults = spec.faults != nullptr ? *spec.faults : no_faults;

        // Stage A — per shard, on the pool: slice this round's messages to
        // the closure, build (or fetch) the shard round, and publish the
        // export rows. Each row has exactly one writer: the owning shard.
        pool_->parallel_for(k, [&](std::size_t, std::size_t s) {
            const ShardPlan::Shard& sh = plan_.shards[s];
            ShardRoundScratch& sr = ext->shards[s];
            const std::size_t ln = sh.local_to_global.size();
            sr.messages.resize(ln);
            for (std::size_t li = 0; li < ln; ++li) {
                sr.messages[li] = (*spec.messages)[sh.local_to_global[li]];
            }
            sr.round = shards_[s].codebook->round(sr.messages, spec.nonce);
            std::uint64_t* row = ext->table.data() + row_offset_words_[s];
            for (const auto e : sh.exports) {
                const std::vector<std::uint64_t>& cw = sr.round->codewords[e].words();
                const std::vector<std::uint64_t>& cs =
                    sr.round->combined_schedules[e].words();
                std::memcpy(row, cw.data(), wb * sizeof(std::uint64_t));
                std::memcpy(row + wb, cs.data(), wb * sizeof(std::uint64_t));
                row += 2 * wb;
            }
        });

        // The exchange seam: in a distributed deployment this is where the
        // boundary table crosses the network. Checked once per round on the
        // coordinator, so injected faults hit deterministically regardless
        // of shard and worker counts.
        fp_shard_exchange.check();

        // Stage B — per shard, on the pool: import halo rows, apply fault
        // overrides, and decode the owned nodes with the shared per-node
        // pipeline (decode_core.h).
        pool_->parallel_for(k, [&](std::size_t worker, std::size_t s) {
            const ShardPlan::Shard& sh = plan_.shards[s];
            ShardRoundScratch& sr = ext->shards[s];
            const Codebook& codebook = *shards_[s].codebook;
            const Codebook::Round& round = *sr.round;
            const std::size_t ln = sh.local_to_global.size();
            const std::uint32_t owned_end = sh.owned_begin + sh.owned_count;

            sr.codewords.resize(ln);
            sr.one_positions.resize(ln);
            sr.phase2.resize(ln);
            for (std::uint32_t v = sh.owned_begin; v < owned_end; ++v) {
                sr.codewords[v] = round.codewords[v];
                sr.one_positions[v] = round.one_positions[v];
                sr.phase2[v] = round.combined_schedules[v];
            }
            for (const ShardPlan::Import& imp : sh.imports) {
                const std::uint64_t* row = ext->table.data() +
                                           row_offset_words_[imp.src_shard] +
                                           static_cast<std::size_t>(imp.src_row) * 2 * wb;
                sr.codewords[imp.local] = Bitstring::from_words({row, wb}, b);
                sr.phase2[imp.local] = Bitstring::from_words({row + wb, wb}, b);
                sr.one_positions[imp.local] = sr.codewords[imp.local].one_positions();
            }

            // Per-local fault states from the global lists (already
            // validated); most shards see none of the faulty ids.
            sr.states.assign(ln, NodeState::correct);
            for (const auto g : faults.jammers) {
                const std::size_t l = local_index_of(sh.local_to_global, g);
                if (l < ln) {
                    sr.states[l] = NodeState::jammer;
                }
            }
            for (const auto g : faults.crashed) {
                const std::size_t l = local_index_of(sh.local_to_global, g);
                if (l < ln) {
                    sr.states[l] = NodeState::crashed;
                }
            }

            const std::vector<Bitstring>* phase1_schedules = &sr.codewords;
            const std::vector<Bitstring>* phase2_schedules = &sr.phase2;
            if (!faults.empty()) {
                sr.faulty_phase1 = sr.codewords;
                sr.faulty_phase2 = sr.phase2;
                for (std::size_t v = 0; v < ln; ++v) {
                    if (sr.states[v] == NodeState::jammer) {
                        sr.faulty_phase1[v] = ~Bitstring(b);
                        sr.faulty_phase2[v] = ~Bitstring(b);
                    } else if (sr.states[v] == NodeState::crashed) {
                        sr.faulty_phase1[v] = Bitstring(b);
                        sr.faulty_phase2[v] = Bitstring(b);
                    }
                }
                phase1_schedules = &sr.faulty_phase1;
                phase2_schedules = &sr.faulty_phase2;
            }

            // Engines on the local closure graph, noise keyed by global id,
            // streams derived from the same round rng every shard (and the
            // unsharded transport) derives — per-node noise is therefore
            // independent of the partition.
            const BatchParams channel{params_.channel_model(), false};
            const std::span<const std::uint32_t> ids(sh.local_to_global);
            const BatchEngine phase1_engine(sh.local, channel,
                                            round.rng.derive(0x70683161u), ids);
            const BatchEngine phase2_engine(sh.local, channel,
                                            round.rng.derive(0x70683262u), ids);
            phase1_engine.check_schedules(*phase1_schedules);
            phase2_engine.check_schedules(*phase2_schedules);

            const Phase1Decoder phase1_decoder(codebook.beep_code(), params_.epsilon);
            sr.diagnostics.assign(ln, NodeDiagnostics{});

            DecodeContext ctx;
            ctx.graph = &sh.local;
            ctx.codebook = &codebook;
            ctx.round = &round;
            ctx.codewords = &sr.codewords;
            ctx.one_positions = &sr.one_positions;
            ctx.messages = &sr.messages;
            ctx.phase1_schedules = phase1_schedules;
            ctx.phase2_schedules = phase2_schedules;
            ctx.phase1_engine = &phase1_engine;
            ctx.phase2_engine = &phase2_engine;
            ctx.phase1_decoder = &phase1_decoder;
            ctx.distance_code = &codebook.distance_code();
            ctx.batch = &batch;
            ctx.workspaces = &scratch.workspaces;
            ctx.states = &sr.states;
            ctx.diagnostics = &sr.diagnostics;
            ctx.local_to_global = sh.local_to_global.data();
            ctx.round_index = i;
            ctx.n = ln;
            ctx.decoy_count = codebook.decoy_count();
            ctx.bitsliced = !round.codeword_slices.empty();  // two_hop: never
            ctx.kernel = kernel;

            for (std::uint32_t v = sh.owned_begin; v < owned_end; ++v) {
                transport_detail::decode_node(ctx, worker, static_cast<NodeId>(v));
            }

            // Owned-only energy so the cross-shard sum counts every global
            // node exactly once.
            if (faults.empty()) {
                sr.total_beeps = round.phase1_beeps + round.phase2_beeps;
            } else {
                sr.total_beeps = 0;
                for (std::uint32_t v = sh.owned_begin; v < owned_end; ++v) {
                    if (sr.states[v] == NodeState::jammer) {
                        sr.total_beeps += 2 * b;
                    } else if (sr.states[v] == NodeState::correct) {
                        sr.total_beeps += round.codewords[v].count() +
                                          round.combined_schedules[v].count();
                    }
                }
            }
        });

        // Deterministic reduction: shard order, then local order — totals
        // are independent of thread schedule, shard count, and worker count.
        TransportRoundStats& stats = batch.stats_[i];
        stats.beep_rounds = 2 * b;
        for (std::size_t s = 0; s < k; ++s) {
            const ShardRoundScratch& sr = ext->shards[s];
            stats.total_beeps += sr.total_beeps;
            for (const auto& diag : sr.diagnostics) {
                stats.phase1_false_negatives += diag.phase1_false_negatives;
                stats.phase1_false_positives += diag.phase1_false_positives;
                stats.phase2_errors += diag.phase2_errors;
                stats.delivery_mismatches += diag.delivery_mismatches;
            }
        }
        stats.perfect = stats.delivery_mismatches == 0;
    }
}

}  // namespace nb
