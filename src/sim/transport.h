// Algorithm 1: simulation of one Broadcast CONGEST round with noisy beeps.
//
// Phase 1 — each node v picks a fresh random input r_v and beeps the beep
// codeword C(r_v) bit-by-bit (b rounds). Every node decodes the noisy
// superimposition transcript with the Lemma 9 threshold rule to obtain
// R~_v, the set of inputs used in its inclusive neighborhood.
//
// Phase 2 — each node beeps the combined codeword CD(r_v, m_v) (b rounds):
// its distance-coded payload written into C(r_v)'s 1-positions. For every
// recovered input r in R~_v, a node extracts the transcript subsequence at
// C(r)'s 1-positions and nearest-codeword-decodes it (Lemma 10 rule).
//
// Total: exactly 2*b = 2*c_eps^3*(Delta+1)*payload_bits beep rounds — the
// O(Delta log n) overhead of Theorem 11.
//
// The transport also computes ground-truth deliveries and per-phase error
// diagnostics, which the experiments report; they are observability hooks,
// never inputs to the decoding itself.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "codes/combined_code.h"
#include "codes/decoders.h"
#include "common/bitstring.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "sim/codebook.h"
#include "sim/codebook_cache.h"
#include "sim/params.h"
#include "sim/transport_batch.h"

namespace nb {

/// Fault injection for robustness experiments (an extension beyond the
/// paper's model, which assumes only channel noise):
///  * jammers beep in every round of both phases (a stuck-on transmitter);
///  * crashed nodes never beep and produce no output.
/// Correct nodes run Algorithm 1 unchanged; the diagnostics measure the
/// collateral damage in the faulty nodes' neighborhoods.
struct FaultModel {
    std::vector<NodeId> jammers;
    std::vector<NodeId> crashed;

    bool empty() const noexcept { return jammers.empty() && crashed.empty(); }
};

/// Result of simulating one Broadcast CONGEST round.
struct TransportRound {
    /// delivered[v] = sorted multiset of messages decoded by v (one entry
    /// per recovered foreign codeword whose payload carries a message).
    std::vector<std::vector<Bitstring>> delivered;

    std::size_t beep_rounds = 0;  ///< 2*b
    std::size_t total_beeps = 0;  ///< energy: total 1s transmitted

    // Diagnostics (vs ground truth):
    std::size_t phase1_false_negatives = 0;  ///< in-neighborhood inputs missed
    std::size_t phase1_false_positives = 0;  ///< foreign inputs accepted
    std::size_t phase2_errors = 0;           ///< true-neighbor payloads mis-decoded
    std::size_t delivery_mismatches = 0;     ///< nodes whose delivery != ground truth
    bool perfect = true;                     ///< delivery_mismatches == 0
};

/// One round of a batched simulation: the messages (non-owning and never
/// null — implementations require() it per spec, and the pointee must
/// outlive the simulate_rounds call, including the pipelined build of later
/// rounds), the per-round nonce, and an optional fault model (nullptr =
/// fault-free, otherwise also non-owning with the same lifetime contract).
/// Sweeps typically share one messages vector across many specs and vary
/// only the nonce.
struct RoundSpec {
    const std::vector<std::optional<Bitstring>>* messages = nullptr;
    std::uint64_t nonce = 0;
    const FaultModel* faults = nullptr;
};

/// Abstract "one Broadcast CONGEST round over beeps" mechanism. The paper's
/// Algorithm 1 (BeepTransport) and the prior-work G^2-coloring TDMA baseline
/// implement this, so the same simulated engine and experiments drive both.
class Transport {
public:
    virtual ~Transport() = default;

    /// Simulate a batch of rounds, one result per spec, in spec order. This
    /// is the throughput path: per-spec setup (schedule validation, decode
    /// workspaces, engine state) is paid once per batch instead of once per
    /// round, and implementations may overlap per-round precomputation with
    /// the decoding of earlier rounds. Outputs are bit-identical to calling
    /// simulate_round per spec — batching, like threading, only trades
    /// wall-clock (see DESIGN.md section 5).
    virtual std::vector<TransportRound> simulate_rounds(
        std::span<const RoundSpec> specs) const = 0;

    /// Simulate one round. `messages[v]` is node v's broadcast (at most
    /// message_bits bits) or nullopt for silence. `round_nonce` must differ
    /// across rounds (it keys the fresh per-round randomness). Equivalent to
    /// simulate_rounds with a single spec.
    TransportRound simulate_round(const std::vector<std::optional<Bitstring>>& messages,
                                  std::uint64_t round_nonce) const;

    /// Beep rounds one simulated round costs on this transport's graph.
    virtual std::size_t rounds_per_broadcast_round() const = 0;

    virtual const Graph& graph() const noexcept = 0;
};

class BeepTransport final : public Transport {
public:
    /// The graph must outlive the transport.
    BeepTransport(const Graph& graph, SimulationParams params);

    using Transport::simulate_round;

    std::vector<TransportRound> simulate_rounds(
        std::span<const RoundSpec> specs) const override;

    /// The zero-copy batch path: decode `specs` into caller-owned arena
    /// storage (see transport_batch.h). Bit-identical to simulate_rounds —
    /// batch.to_round(i) reproduces result[i] exactly — but delivered
    /// messages land as fixed-stride records in per-worker arenas instead
    /// of per-node Bitstring vectors, and all decode scratch lives in the
    /// batch, so a reused batch at its steady-state high-water mark decodes
    /// with zero heap allocations. One simulate_rounds_into call writes a
    /// batch at a time; simulate_rounds is this plus the per-round
    /// conversion.
    void simulate_rounds_into(std::span<const RoundSpec> specs, TransportBatch& batch) const;

    /// Fault-injected variant: `faults` nodes misbehave as described by
    /// FaultModel. Ground-truth diagnostics expect nothing from faulty nodes
    /// (their messages are lost by definition); deliveries at correct nodes
    /// measure how far the damage spreads.
    TransportRound simulate_round(const std::vector<std::optional<Bitstring>>& messages,
                                  std::uint64_t round_nonce, const FaultModel& faults) const;

    /// Beep rounds one simulated round costs on this graph (2*b).
    std::size_t rounds_per_broadcast_round() const override;

    const SimulationParams& params() const noexcept { return params_; }
    const Graph& graph() const noexcept override { return graph_; }

    /// The code/dictionary cache this transport decodes with (see
    /// codebook.h): the process-wide shared build when
    /// params.shared_codebook (possibly serving other transports too, so
    /// its stats() aggregate across them), otherwise this transport's
    /// private build.
    const Codebook& codebook() const noexcept { return *codebook_; }

private:
    void decode_round_into(const Codebook::Round& round, const RoundSpec& spec,
                           std::size_t round_index, TransportBatch& batch) const;

    const Graph& graph_;
    SimulationParams params_;
    std::shared_ptr<const SharedCodebook> shared_codebook_;  ///< cache-owned
    std::unique_ptr<Codebook> owned_codebook_;               ///< private build
    const Codebook* codebook_ = nullptr;  ///< whichever of the two is active
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nb
