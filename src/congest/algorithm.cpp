#include "congest/algorithm.h"

#include <algorithm>

namespace nb {

bool message_less(const Bitstring& lhs, const Bitstring& rhs) {
    if (lhs.size() != rhs.size()) {
        return lhs.size() < rhs.size();
    }
    const auto& lw = lhs.words();
    const auto& rw = rhs.words();
    // Compare from the most significant word down for a total order; the
    // specific order does not matter as long as it is consistent.
    for (std::size_t i = lw.size(); i-- > 0;) {
        if (lw[i] != rw[i]) {
            return lw[i] < rw[i];
        }
    }
    return false;
}

void sort_messages(std::vector<Bitstring>& messages) {
    std::sort(messages.begin(), messages.end(), message_less);
}

}  // namespace nb
