#include "congest/native_engine.h"

#include <algorithm>

#include "common/error.h"

namespace nb {

Rng algorithm_stream(std::uint64_t algorithm_seed, NodeId node) {
    return Rng(algorithm_seed).derive(0x616c676fu, node);
}

namespace {

void check_message_budget(const Bitstring& message, std::size_t budget, const char* engine) {
    if (budget > 0) {
        require(message.size() <= budget,
                std::string(engine) + ": message exceeds the bit budget");
    }
}

template <typename NodeVector>
CongestInfo info_for(const Graph& graph, const CongestParams& params, NodeId v) {
    return CongestInfo{graph.node_count(), graph.max_degree(), params.message_bits,
                       graph.degree(v)};
}

}  // namespace

NativeBroadcastCongestEngine::NativeBroadcastCongestEngine(const Graph& graph,
                                                           CongestParams params)
    : graph_(graph), params_(params) {}

CongestRunStats NativeBroadcastCongestEngine::run(
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes, std::size_t max_rounds) {
    const std::size_t n = graph_.node_count();
    require(nodes.size() == n, "NativeBroadcastCongestEngine: one algorithm per node");
    for (const auto& node : nodes) {
        require(node != nullptr, "NativeBroadcastCongestEngine: null algorithm");
    }

    std::vector<Rng> streams;
    streams.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        streams.push_back(algorithm_stream(params_.algorithm_seed, v));
        nodes[v]->initialize(v, info_for<void>(graph_, params_, v), streams[v]);
    }

    CongestRunStats stats;
    std::vector<std::optional<Bitstring>> outbox(n);
    for (std::size_t round = 0; round < max_rounds; ++round) {
        bool someone_active = false;
        for (NodeId v = 0; v < n; ++v) {
            outbox[v].reset();
            if (nodes[v]->finished()) {
                continue;
            }
            someone_active = true;
            outbox[v] = nodes[v]->broadcast(round, streams[v]);
            if (outbox[v].has_value()) {
                check_message_budget(*outbox[v], params_.message_bits,
                                     "NativeBroadcastCongestEngine");
                ++stats.messages_sent;
            }
        }
        if (!someone_active) {
            stats.all_finished = true;
            break;
        }
        ++stats.rounds;

        for (NodeId v = 0; v < n; ++v) {
            if (nodes[v]->finished()) {
                continue;
            }
            std::vector<Bitstring> inbox;
            for (const auto u : graph_.neighbors(v)) {
                if (outbox[u].has_value()) {
                    inbox.push_back(*outbox[u]);
                }
            }
            sort_messages(inbox);
            nodes[v]->receive(round, inbox, streams[v]);
        }
        if (round_observer_) {
            round_observer_(round);
        }
    }

    if (!stats.all_finished) {
        stats.all_finished = std::all_of(nodes.begin(), nodes.end(),
                                         [](const auto& node) { return node->finished(); });
    }
    return stats;
}

NativeCongestEngine::NativeCongestEngine(const Graph& graph, CongestParams params)
    : graph_(graph), params_(params) {}

CongestRunStats NativeCongestEngine::run(std::vector<std::unique_ptr<CongestAlgorithm>>& nodes,
                                         std::size_t max_rounds) {
    const std::size_t n = graph_.node_count();
    require(nodes.size() == n, "NativeCongestEngine: one algorithm per node");
    for (const auto& node : nodes) {
        require(node != nullptr, "NativeCongestEngine: null algorithm");
    }

    std::vector<Rng> streams;
    streams.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        streams.push_back(algorithm_stream(params_.algorithm_seed, v));
        nodes[v]->initialize(v, info_for<void>(graph_, params_, v), streams[v]);
    }

    CongestRunStats stats;
    // inboxes[v] accumulates this round's deliveries for v.
    std::vector<std::vector<AddressedMessage>> inboxes(n);
    for (std::size_t round = 0; round < max_rounds; ++round) {
        bool someone_active = false;
        for (auto& inbox : inboxes) {
            inbox.clear();
        }
        for (NodeId v = 0; v < n; ++v) {
            if (nodes[v]->finished()) {
                continue;
            }
            someone_active = true;
            for (const auto u : graph_.neighbors(v)) {
                auto message = nodes[v]->send(round, u, streams[v]);
                if (message.has_value()) {
                    check_message_budget(*message, params_.message_bits, "NativeCongestEngine");
                    ++stats.messages_sent;
                    inboxes[u].push_back(AddressedMessage{v, std::move(*message)});
                }
            }
        }
        if (!someone_active) {
            stats.all_finished = true;
            break;
        }
        ++stats.rounds;

        for (NodeId v = 0; v < n; ++v) {
            if (nodes[v]->finished()) {
                continue;
            }
            std::sort(inboxes[v].begin(), inboxes[v].end(),
                      [](const AddressedMessage& a, const AddressedMessage& b) {
                          return a.sender < b.sender;
                      });
            nodes[v]->receive(round, inboxes[v], streams[v]);
        }
    }

    if (!stats.all_finished) {
        stats.all_finished = std::all_of(nodes.begin(), nodes.end(),
                                         [](const auto& node) { return node->finished(); });
    }
    return stats;
}

}  // namespace nb
