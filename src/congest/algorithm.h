// Algorithm interfaces for the message-passing models.
//
// The same algorithm object runs unchanged on the native engines (ground
// truth) and on the beep-simulation engines (the paper's contribution);
// differential tests compare the two executions' outputs.
//
// Broadcast CONGEST (paper Section 1.1): per round, each node may broadcast
// one B-bit message heard by all neighbors. Deliveries carry no sender
// identification — a node receives the *multiset* of neighbor messages,
// sorted canonically. (This matches what the beep simulation can provide,
// see paper footnote 1, and suffices for the algorithms in the paper:
// messages carry ids when needed.)
//
// CONGEST: per round each node may send a distinct message per neighbor;
// deliveries identify the sender.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/bitstring.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace nb {

/// What nodes know a priori in the message-passing models.
struct CongestInfo {
    std::size_t node_count = 0;    ///< n
    std::size_t max_degree = 0;    ///< Delta
    std::size_t message_bits = 0;  ///< per-message budget B = gamma*ceil(log2 n)
    std::size_t degree = 0;        ///< this node's own degree
};

/// A received CONGEST message with its sender.
struct AddressedMessage {
    NodeId sender = 0;
    Bitstring payload;
};

class BroadcastCongestAlgorithm {
public:
    virtual ~BroadcastCongestAlgorithm() = default;

    /// Called once before round 0 with this node's id, model facts, and the
    /// node's private random stream.
    virtual void initialize(NodeId self, const CongestInfo& info, Rng& rng) = 0;

    /// The message to broadcast this round (at most info.message_bits bits),
    /// or nullopt to stay silent.
    virtual std::optional<Bitstring> broadcast(std::size_t round, Rng& rng) = 0;

    /// Deliver the sorted multiset of messages broadcast by neighbors this
    /// round (silent neighbors contribute nothing).
    virtual void receive(std::size_t round, const std::vector<Bitstring>& messages,
                         Rng& rng) = 0;

    /// True once the node has terminated (it stays silent afterwards).
    virtual bool finished() const = 0;
};

class CongestAlgorithm {
public:
    virtual ~CongestAlgorithm() = default;

    virtual void initialize(NodeId self, const CongestInfo& info, Rng& rng) = 0;

    /// Message for neighbor `neighbor` this round, or nullopt for none.
    virtual std::optional<Bitstring> send(std::size_t round, NodeId neighbor, Rng& rng) = 0;

    /// Deliver this round's messages, each with its sender, sorted by sender.
    virtual void receive(std::size_t round, const std::vector<AddressedMessage>& messages,
                         Rng& rng) = 0;

    virtual bool finished() const = 0;
};

/// Canonical ordering for unaddressed deliveries: length, then lexicographic
/// on bits. Engines sort deliveries with this so native and simulated runs
/// are comparable element-wise.
bool message_less(const Bitstring& lhs, const Bitstring& rhs);

/// Sort a delivery batch canonically.
void sort_messages(std::vector<Bitstring>& messages);

}  // namespace nb
