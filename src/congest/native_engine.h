// Native (ground-truth) executors for Broadcast CONGEST and CONGEST.
//
// These engines deliver messages perfectly, exactly as the model definitions
// prescribe. They serve two purposes: (1) algorithms such as maximal
// matching are developed and measured against them directly (Section 6), and
// (2) they are the reference semantics for differential tests of the beep
// simulation (a correct simulated run must produce identical outputs).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace nb {

/// Outcome of a native run.
struct CongestRunStats {
    std::size_t rounds = 0;          ///< communication rounds executed
    std::size_t messages_sent = 0;   ///< total (non-silent) messages
    bool all_finished = false;
};

/// Shared engine configuration.
struct CongestParams {
    std::size_t message_bits = 0;  ///< per-message budget B; 0 = unchecked

    /// Seed from which per-node algorithm streams are derived. Runs of the
    /// same algorithm with the same seed make identical random choices on
    /// the native engine and under beep simulation.
    std::uint64_t algorithm_seed = 0;
};

class NativeBroadcastCongestEngine {
public:
    NativeBroadcastCongestEngine(const Graph& graph, CongestParams params);

    /// Observability hook invoked after each completed round's deliveries
    /// (used by experiments to sample algorithm state, e.g. the per-
    /// iteration edge decay of Lemma 19).
    void set_round_observer(std::function<void(std::size_t round)> observer) {
        round_observer_ = std::move(observer);
    }

    /// Run until all nodes are finished or `max_rounds` is reached.
    CongestRunStats run(std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes,
                        std::size_t max_rounds);

private:
    const Graph& graph_;
    CongestParams params_;
    std::function<void(std::size_t)> round_observer_;
};

class NativeCongestEngine {
public:
    NativeCongestEngine(const Graph& graph, CongestParams params);

    CongestRunStats run(std::vector<std::unique_ptr<CongestAlgorithm>>& nodes,
                        std::size_t max_rounds);

private:
    const Graph& graph_;
    CongestParams params_;
};

/// Per-node algorithm random streams: stream v is derive(algorithm_seed, v).
/// Exposed so the beep-simulation engines use the identical derivation.
Rng algorithm_stream(std::uint64_t algorithm_seed, NodeId node);

}  // namespace nb
